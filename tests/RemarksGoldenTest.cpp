//===- tests/RemarksGoldenTest.cpp - Golden-file remark regression ---------===//
//
// Pins the structured vectorization-remark stream (driver/Remarks.h) for a
// representative set of loops against checked-in golden JSON files in
// tests/golden/remarks/. The set is chosen so every remark id the pipeline
// can emit appears in at least one golden: pattern recognition (reductions,
// early exits, conditional updates, memory conflicts), the speculative-load
// analysis, every lowering strategy's applied remark, and — crucially — each
// decline reason, including FlexVec's reductions-with-speculative-loads
// refusal and the speculative baseline's legality walk.
//
// To regenerate after an intentional change:
//
//   FLEXVEC_UPDATE_GOLDEN=1 ./build/tests/remarks_golden_test
//
// then review the diff of tests/golden/remarks/*.json like any other code
// change.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "driver/AdaptiveStrategy.h"
#include "driver/Remarks.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace flexvec;

namespace {

/// The remark goldens freeze the 512-bit compilation (notes quote lane
/// counts), so the width is pinned: a FLEXVEC_VL override (the CI width
/// leg) must not reinterpret the checked-in files.
core::PipelineResult compileAt512(const ir::LoopFunction &F,
                                  unsigned RtmTile) {
  driver::DriverOptions Opts;
  Opts.RtmTile = RtmTile;
  Opts.Vec = isa::VectorConfig();
  return driver::compileLoop(F, Opts);
}

std::string readFile(const std::string &Path, bool *Ok = nullptr) {
  std::ifstream In(Path);
  if (Ok)
    *Ok = In.good();
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// One golden case: either a checked-in loop file (relative to the source
/// tree) or an inline DSL source for shapes the corpus does not cover.
struct RemarkCase {
  const char *Name;   ///< Golden file stem under tests/golden/remarks/.
  const char *Path;   ///< Loop file relative to the repo root, or nullptr.
  const char *Source; ///< Inline DSL source when Path is nullptr.
};

const RemarkCase Cases[] = {
    // The three flagship loops: conditional update, early exit with
    // speculative loads, and a runtime memory conflict.
    {"argmin", "examples/loops/argmin.fv", nullptr},
    {"find_first", "examples/loops/find_first.fv", nullptr},
    {"histogram", "examples/loops/histogram.fv", nullptr},
    // Early exit behind a masked indirect gather (string_match shape).
    {"find_sentinel", "tests/corpus/find_sentinel.fv", nullptr},
    // Plain add reduction: vectorizable by every strategy, exercises the
    // unguarded reduction analysis remark and traditional's applied path.
    {"sum_reduction", nullptr,
     "loop sum_reduction(i64 n trip, i32 acc liveout, i32 a[] readonly) {\n"
     "  acc = (acc + a[i]);\n"
     "}\n"},
    // Reduction behind an early exit: the loads run speculatively past the
    // exit, so FlexVec must refuse (reductions cannot be rolled back when a
    // first-faulting load truncates the chunk) while RTM still fires.
    {"sum_until_sentinel", nullptr,
     "loop sum_until_sentinel(i64 n trip, i32 acc liveout, i32 sentinel,\n"
     "                        i32 c, i32 a[] readonly) {\n"
     "  c = a[i];\n"
     "  if (c == sentinel) {\n"
     "    break;\n"
     "  }\n"
     "  acc = (acc + c);\n"
     "}\n"},
};

std::string goldenPath(const RemarkCase &C) {
  return std::string(FLEXVEC_SOURCE_DIR) + "/tests/golden/remarks/" +
         C.Name + ".json";
}

/// Points at the first differing line so CI logs read like a diff hunk.
void expectGoldenEq(const std::string &Golden, const std::string &Actual,
                    const std::string &GoldenPath) {
  if (Golden == Actual)
    return;
  std::istringstream G(Golden), A(Actual);
  std::string GLine, ALine;
  int Line = 1;
  while (true) {
    bool HasG = static_cast<bool>(std::getline(G, GLine));
    bool HasA = static_cast<bool>(std::getline(A, ALine));
    if (!HasG && !HasA)
      break;
    if (!HasG || !HasA || GLine != ALine) {
      FAIL() << GoldenPath << ":" << Line << ": first difference\n"
             << "  golden: " << (HasG ? GLine : "<eof>") << "\n"
             << "  actual: " << (HasA ? ALine : "<eof>") << "\n"
             << "regenerate with FLEXVEC_UPDATE_GOLDEN=1 if intentional";
      return;
    }
    ++Line;
  }
  FAIL() << GoldenPath << ": contents differ (line-by-line scan found no "
            "difference; check trailing whitespace)";
}

class RemarksGolden : public ::testing::TestWithParam<RemarkCase> {};

TEST_P(RemarksGolden, MatchesCheckedInFile) {
  const RemarkCase &C = GetParam();
  std::string Source;
  if (C.Path) {
    bool Ok = false;
    Source = readFile(std::string(FLEXVEC_SOURCE_DIR) + "/" + C.Path, &Ok);
    ASSERT_TRUE(Ok) << "cannot read " << C.Path;
  } else {
    Source = C.Source;
  }
  ir::ParseResult P = ir::parseLoop(Source);
  ASSERT_TRUE(P) << C.Name << ": " << P.Error;

  // RtmTile=64 to match the codegen goldens (the RTM applied remark quotes
  // the tile size in its message).
  core::PipelineResult PR = compileAt512(*P.F, /*RtmTile=*/64);
  std::string Actual = PR.Remarks.toJson().dump();

  std::string Path = goldenPath(C);
  if (std::getenv("FLEXVEC_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    GTEST_SKIP() << "regenerated " << Path;
  }

  bool Ok = false;
  std::string Golden = readFile(Path, &Ok);
  ASSERT_TRUE(Ok) << "missing golden file " << Path
                  << " (generate with FLEXVEC_UPDATE_GOLDEN=1)";
  expectGoldenEq(Golden, Actual, Path);
}

// No silent declines: independent of the golden bytes, every variant the
// pipeline did not produce must carry a machine-readable missed remark from
// the lowering pass, and every produced one an applied remark.
TEST_P(RemarksGolden, EveryDeclineIsObservable) {
  const RemarkCase &C = GetParam();
  std::string Source =
      C.Path ? readFile(std::string(FLEXVEC_SOURCE_DIR) + "/" + C.Path)
             : std::string(C.Source);
  ir::ParseResult P = ir::parseLoop(Source);
  ASSERT_TRUE(P) << C.Name << ": " << P.Error;
  core::PipelineResult PR = compileAt512(*P.F, /*RtmTile=*/64);

  struct Column {
    const char *Variant;
    bool Generated;
  } Columns[] = {
      {"traditional", PR.Traditional.has_value()},
      {"speculative", PR.Speculative.has_value()},
      {"flexvec", PR.FlexVec.has_value()},
      {"flexvec-rtm", PR.Rtm.has_value()},
      {"flexvec-adaptive", PR.Adaptive.has_value()},
  };
  for (const Column &Col : Columns) {
    bool Applied = false, Missed = false;
    for (const driver::Remark &R : PR.Remarks.remarks()) {
      if (R.Pass != "lower" || R.Variant != Col.Variant)
        continue;
      Applied |= R.Kind == driver::RemarkKind::Applied;
      Missed |= R.Kind == driver::RemarkKind::Missed;
    }
    if (Col.Generated)
      EXPECT_TRUE(Applied) << C.Name << ": " << Col.Variant
                           << " generated without an applied remark";
    else
      EXPECT_TRUE(Missed) << C.Name << ": " << Col.Variant
                          << " declined silently (no missed remark)";
  }
}

INSTANTIATE_TEST_SUITE_P(RepresentativeLoops, RemarksGolden,
                         ::testing::ValuesIn(Cases),
                         [](const ::testing::TestParamInfo<RemarkCase> &I) {
                           return std::string(I.param.Name);
                         });

// The FlexVec refusal the paper calls out (Section 4.3): a reduction whose
// inputs load speculatively past an early exit cannot use first-faulting
// loads, because a truncated chunk would have already folded poisoned lanes
// into the accumulator. The decline must be a structured remark with the
// stable id, not a silent nullopt.
TEST(Remarks, ReductionWithSpeculativeLoadsRefusal) {
  const RemarkCase *C = nullptr;
  for (const RemarkCase &RC : Cases)
    if (std::string(RC.Name) == "sum_until_sentinel")
      C = &RC;
  ASSERT_NE(C, nullptr);
  ir::ParseResult P = ir::parseLoop(C->Source);
  ASSERT_TRUE(P) << P.Error;
  core::PipelineResult PR = compileAt512(*P.F, /*RtmTile=*/64);

  ASSERT_TRUE(PR.Plan.Vectorizable);
  EXPECT_FALSE(PR.Plan.Reductions.empty());
  EXPECT_FALSE(PR.Plan.SpeculativeLoadNodes.empty());
  EXPECT_FALSE(PR.FlexVec) << "FlexVec must refuse reductions with "
                              "speculative loads";
  EXPECT_TRUE(PR.Rtm) << "RTM handles the same loop via rollback";

  const driver::Remark *Decline = nullptr;
  for (const driver::Remark &R : PR.Remarks.remarks())
    if (R.Kind == driver::RemarkKind::Missed && R.Variant == "flexvec")
      Decline = &R;
  ASSERT_NE(Decline, nullptr);
  EXPECT_EQ(Decline->Id, "decline.reductions-with-speculative-loads");
  EXPECT_EQ(Decline->Pass, "lower");
  // The legacy CLI diagnostic surface is derived from this same remark.
  ASSERT_EQ(PR.Diagnostics.size(), 1u);
  EXPECT_EQ(PR.Diagnostics[0], "flexvec: " + Decline->Message);
}

// The three runtime dispatch remark ids are API: obs dashboards and the
// bench payload key on them, so their ids, pass, and variant tags are
// pinned here — and the synthesis never goes silent (every adaptive
// execution yields exactly one demoted-or-stayed verdict).
TEST(Remarks, DispatchRemarkIdsArePinned) {
  driver::DispatchCounts C;
  C.GuardFail = 2;
  C.Invocations = 8;
  C.AbortedInvocations = 8;
  C.Demotions = 1;
  C.State = 1;
  std::vector<driver::Remark> Rs = driver::dispatchRemarks(C);
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_EQ(Rs[0].Id, "dispatch.guard-failed");
  EXPECT_EQ(Rs[0].Pass, "dispatch");
  EXPECT_EQ(Rs[0].Kind, driver::RemarkKind::Analysis);
  EXPECT_EQ(Rs[0].Variant, "flexvec-adaptive");
  EXPECT_EQ(Rs[1].Id, "dispatch.demoted");
  EXPECT_EQ(Rs[1].Pass, "dispatch");
  EXPECT_EQ(Rs[1].Kind, driver::RemarkKind::Applied);
  EXPECT_EQ(Rs[1].Variant, "flexvec-adaptive");

  // Exhaustive verdict coverage: any counter state produces exactly one of
  // dispatch.demoted / dispatch.promoted-stay — never neither.
  for (uint64_t State : {0u, 1u}) {
    driver::DispatchCounts Any;
    Any.State = State;
    Any.Demotions = State;
    std::vector<driver::Remark> Out = driver::dispatchRemarks(Any);
    ASSERT_EQ(Out.size(), 1u);
    EXPECT_EQ(Out[0].Id,
              State ? "dispatch.demoted" : "dispatch.promoted-stay");
  }
}

} // namespace
