//===- tests/SupportTest.cpp - Support library unit tests ------------------===//

#include "support/Bits.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace flexvec;

TEST(Bits, LowBitMask) {
  EXPECT_EQ(lowBitMask(0), 0u);
  EXPECT_EQ(lowBitMask(1), 1u);
  EXPECT_EQ(lowBitMask(16), 0xFFFFu);
  EXPECT_EQ(lowBitMask(64), ~0ULL);
}

TEST(Bits, TestAndAssign) {
  uint64_t M = 0;
  M = assignBit(M, 5, true);
  EXPECT_TRUE(testBit(M, 5));
  EXPECT_FALSE(testBit(M, 4));
  M = assignBit(M, 5, false);
  EXPECT_EQ(M, 0u);
  EXPECT_EQ(countTrailingZeros(0x20), 5u);
  EXPECT_EQ(countTrailingZeros(0), 64u);
  EXPECT_EQ(popcount(0xF0F0), 8u);
}

TEST(Random, Deterministic) {
  Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(Random, NextBelowStaysInRange) {
  Rng R(1);
  for (int I = 0; I < 10000; ++I)
    ASSERT_LT(R.nextBelow(7), 7u);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    ASSERT_GE(V, -3);
    ASSERT_LE(V, 3);
  }
}

TEST(Random, BoolProbabilityRoughlyHolds) {
  Rng R(2);
  int Hits = 0;
  for (int I = 0; I < 100000; ++I)
    Hits += R.nextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(Hits / 100000.0, 0.25, 0.01);
}

TEST(Statistics, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({1.09, 1.09, 1.09}), 1.09, 1e-12);
}

TEST(Statistics, RunningStats) {
  RunningStats S;
  for (double X : {3.0, 1.0, 2.0})
    S.add(X);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.0);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 3.0);
}

TEST(Statistics, HistogramClampsToLastBucket) {
  Histogram H(4);
  H.add(0);
  H.add(1);
  H.add(3);
  H.add(100);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(3), 2u);
  EXPECT_EQ(H.total(), 4u);
}

TEST(Table, RendersAlignedColumns) {
  TextTable T({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // Column alignment: "1" and "22" start at the same offset.
  size_t Line1 = Out.find("alpha");
  size_t Line2 = Out.find("  b");
  ASSERT_NE(Line1, std::string::npos);
  ASSERT_NE(Line2, std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(TextTable::fmt(1.234, 2), "1.23");
  EXPECT_EQ(TextTable::fmtInt(1234567), "1,234,567");
  EXPECT_EQ(TextTable::fmtInt(-42), "-42");
  EXPECT_EQ(TextTable::fmtPercent(0.095), "9.5%");
}

TEST(Table, ShortRowsArePadded) {
  TextTable T({"a", "b", "c"});
  T.addRow({"only"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("only"), std::string::npos);
}
