//===- tests/ParallelEvaluatorTest.cpp - Engine determinism tests ----------===//
//
// The acceptance contract of the parallel evaluation engine:
//
//   * ThreadPool collects results in job order, independent of the worker
//     count, and propagates job exceptions to the caller.
//   * CompileCache is content-addressed (hits on a renamed copy of the same
//     loop, misses on a different RTM tile) and single-flight.
//   * A Figure 8 sweep with --jobs=1 and --jobs=8 produces byte-identical
//     deterministic JSON payloads and identical per-cell numbers across
//     several seeds; only wall-time fields may differ.
//   * Multi-trip sweeps reuse the cache: the miss count stays at the
//     unique-key count no matter how many times the matrix repeats.
//
//===----------------------------------------------------------------------===//

#include "core/CompileCache.h"
#include "core/ParallelEvaluator.h"
#include "ir/Parser.h"
#include "obs/Metrics.h"
#include "support/Hash.h"
#include "support/ThreadPool.h"
#include "workloads/Figure8.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

using namespace flexvec;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, MapResultsAreOrderedByJobIndex) {
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Workers);
    std::vector<int> Out =
        Pool.map<int>(257, [](size_t I) { return static_cast<int>(I * 3); });
    ASSERT_EQ(Out.size(), 257u);
    for (size_t I = 0; I < Out.size(); ++I)
      EXPECT_EQ(Out[I], static_cast<int>(I * 3)) << "workers=" << Workers;
  }
}

TEST(ThreadPool, EveryJobRunsExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(Hits.size(), [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "job " << I;
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool Pool(3);
  std::atomic<int> Ran{0};
  auto Throwing = [&](size_t I) {
    Ran.fetch_add(1);
    if (I == 7)
      throw std::runtime_error("job 7 failed");
  };
  EXPECT_THROW(Pool.parallelFor(16, Throwing), std::runtime_error);
  EXPECT_EQ(Ran.load(), 16) << "remaining jobs must still run";

  // The pool is reusable after a failed batch.
  Ran = 0;
  Pool.parallelFor(8, [&](size_t) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 8);
}

TEST(ThreadPool, BackToBackTinyBatchesNeverSkipOrDoubleRunJobs) {
  // Regression test for the stale-worker race: with far more workers than
  // jobs per batch, most workers sleep through entire batches and wake only
  // after the caller has already published the next one. A late worker must
  // never claim a ticket from, or read the torn-down state of, a batch it
  // did not observe — each job of each batch runs exactly once.
  ThreadPool Pool(8);
  for (int Round = 0; Round < 2000; ++Round) {
    size_t N = 1 + static_cast<size_t>(Round % 3);
    std::vector<std::atomic<int>> Hits(N);
    Pool.parallelFor(N, [&](size_t I) { Hits[I].fetch_add(1); });
    for (size_t I = 0; I < N; ++I)
      ASSERT_EQ(Hits[I].load(), 1) << "round " << Round << " job " << I;
  }
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.workerCount(), 1u);
  std::thread::id Caller = std::this_thread::get_id();
  Pool.parallelFor(4, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
  });
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool Pool(0);
  EXPECT_GE(Pool.workerCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Hash / PRNG stream derivation
//===----------------------------------------------------------------------===//

TEST(Hash, StreamSeedsAreStableAndLabelDependent) {
  uint64_t A = deriveStreamSeed(1, fnv1a64("456.hmmer"));
  EXPECT_EQ(A, deriveStreamSeed(1, fnv1a64("456.hmmer")));
  EXPECT_NE(A, deriveStreamSeed(1, fnv1a64("458.sjeng")));
  EXPECT_NE(A, deriveStreamSeed(2, fnv1a64("456.hmmer")));
}

//===----------------------------------------------------------------------===//
// CompileCache
//===----------------------------------------------------------------------===//

const char *ArgminDsl = R"(
loop argmin(i64 n trip, i32 min_val liveout, i32 min_idx liveout,
            i32 key[] readonly) {
  if (key[i] < min_val) {
    min_val = key[i];
    min_idx = i;
  }
}
)";

// The same loop structure under a different name.
const char *ArgminRenamedDsl = R"(
loop totally_different_name(i64 n trip, i32 min_val liveout,
                            i32 min_idx liveout, i32 key[] readonly) {
  if (key[i] < min_val) {
    min_val = key[i];
    min_idx = i;
  }
}
)";

TEST(CompileCache, SecondRequestIsAHit) {
  ir::ParseResult P = ir::parseLoop(ArgminDsl);
  ASSERT_TRUE(P) << P.Error;
  core::CompileCache Cache;
  bool Hit = true;
  auto First = Cache.getOrCompile(*P.F, 64, &Hit);
  EXPECT_FALSE(Hit);
  auto Second = Cache.getOrCompile(*P.F, 64, &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(First.get(), Second.get()) << "hit must return the same object";
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(CompileCache, KeyIgnoresLoopName) {
  ir::ParseResult A = ir::parseLoop(ArgminDsl);
  ir::ParseResult B = ir::parseLoop(ArgminRenamedDsl);
  ASSERT_TRUE(A) << A.Error;
  ASSERT_TRUE(B) << B.Error;
  EXPECT_EQ(core::CompileCache::keyFor(*A.F, 64),
            core::CompileCache::keyFor(*B.F, 64));

  core::CompileCache Cache;
  bool Hit = true;
  Cache.getOrCompile(*A.F, 64, &Hit);
  EXPECT_FALSE(Hit);
  Cache.getOrCompile(*B.F, 64, &Hit);
  EXPECT_TRUE(Hit) << "renamed copy of the same loop must be a cache hit";
}

TEST(CompileCache, KeyDependsOnRtmTile) {
  ir::ParseResult P = ir::parseLoop(ArgminDsl);
  ASSERT_TRUE(P) << P.Error;
  EXPECT_NE(core::CompileCache::keyFor(*P.F, 64),
            core::CompileCache::keyFor(*P.F, 128));

  core::CompileCache Cache;
  bool Hit = true;
  Cache.getOrCompile(*P.F, 64, &Hit);
  EXPECT_FALSE(Hit);
  Cache.getOrCompile(*P.F, 128, &Hit);
  EXPECT_FALSE(Hit) << "different RTM tile must compile separately";
  EXPECT_EQ(Cache.size(), 2u);
}

// Since pipeline version 5 the vector width and the predicated-lowering
// flag are part of the key: one cache must serve a mixed-width sweep
// (the bench's 512-vs-VL comparison axis) without collisions.
TEST(CompileCache, KeyDependsOnVectorConfigAndPredication) {
  ir::ParseResult P = ir::parseLoop(ArgminDsl);
  ASSERT_TRUE(P) << P.Error;
  const isa::VectorConfig At512, At256(32);
  EXPECT_NE(core::CompileCache::keyFor(*P.F, 64, At512),
            core::CompileCache::keyFor(*P.F, 64, At256));
  EXPECT_NE(core::CompileCache::keyFor(*P.F, 64, At512, false),
            core::CompileCache::keyFor(*P.F, 64, At512, true));

  core::CompileCache Cache;
  bool Hit = true;
  Cache.getOrCompile(*P.F, 64, &Hit, At512);
  EXPECT_FALSE(Hit);
  Cache.getOrCompile(*P.F, 64, &Hit, At256);
  EXPECT_FALSE(Hit) << "different vector width must compile separately";
  Cache.getOrCompile(*P.F, 64, &Hit, At256, /*Predicated=*/true);
  EXPECT_FALSE(Hit) << "predicated lowering must compile separately";
  Cache.getOrCompile(*P.F, 64, &Hit, At256);
  EXPECT_TRUE(Hit) << "same (tile, width, mode) must hit";
  EXPECT_EQ(Cache.size(), 3u);

  // The compiled vector program actually carries the requested width.
  auto PR = Cache.getOrCompile(*P.F, 64, &Hit, At256);
  ASSERT_TRUE(PR->FlexVec.has_value());
  EXPECT_EQ(PR->FlexVec->Prog.vectorBytes(), 32u);
}

TEST(CompileCache, ConcurrentRequestsCompileOnce) {
  ir::ParseResult P = ir::parseLoop(ArgminDsl);
  ASSERT_TRUE(P) << P.Error;
  core::CompileCache Cache;
  ThreadPool Pool(8);
  Pool.parallelFor(32, [&](size_t) { Cache.getOrCompile(*P.F, 64); });
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 31u);
}

//===----------------------------------------------------------------------===//
// Sweep determinism across worker counts
//===----------------------------------------------------------------------===//

core::SweepOptions sweepOpts(unsigned Jobs, uint64_t Seed) {
  core::SweepOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Seed = Seed;
  Opts.Scale = 0.02; // Small inputs: this is a determinism test, not a bench.
  return Opts;
}

void expectCellsIdentical(const core::SweepResult &A,
                          const core::SweepResult &B) {
  ASSERT_EQ(A.Cells.size(), B.Cells.size());
  for (size_t I = 0; I < A.Cells.size(); ++I) {
    const core::CellResult &X = A.Cells[I], &Y = B.Cells[I];
    EXPECT_EQ(X.Benchmark, Y.Benchmark) << "cell " << I;
    EXPECT_EQ(X.Variant, Y.Variant) << "cell " << I;
    EXPECT_EQ(X.Generated, Y.Generated) << X.Benchmark << "/" << X.Variant;
    EXPECT_EQ(X.Correct, Y.Correct) << X.Benchmark << "/" << X.Variant;
    EXPECT_EQ(X.Cycles, Y.Cycles) << X.Benchmark << "/" << X.Variant;
    EXPECT_EQ(X.Instructions, Y.Instructions)
        << X.Benchmark << "/" << X.Variant;
    EXPECT_EQ(X.Uops, Y.Uops) << X.Benchmark << "/" << X.Variant;
    EXPECT_EQ(X.HotSpeedup, Y.HotSpeedup) << X.Benchmark << "/" << X.Variant;
    EXPECT_EQ(X.Overall, Y.Overall) << X.Benchmark << "/" << X.Variant;
    // Per-cell metrics are pure event counts: rendered without timers they
    // must be byte-identical regardless of the worker schedule.
    EXPECT_EQ(X.Metrics.toJson(/*IncludeTimers=*/false).dump(),
              Y.Metrics.toJson(/*IncludeTimers=*/false).dump())
        << X.Benchmark << "/" << X.Variant;
    // StageTimes are wall-clock and deliberately not compared.
  }
}

TEST(SweepDeterminism, JobCountDoesNotChangeResults) {
  for (uint64_t Seed : {1u, 7u, 42u}) {
    core::SweepResult Serial =
        workloads::runFigure8Sweep(sweepOpts(/*Jobs=*/1, Seed));
    core::SweepResult Parallel =
        workloads::runFigure8Sweep(sweepOpts(/*Jobs=*/8, Seed));

    expectCellsIdentical(Serial, Parallel);
    EXPECT_EQ(Serial.SpecGeomean, Parallel.SpecGeomean) << "seed " << Seed;
    EXPECT_EQ(Serial.AppsGeomean, Parallel.AppsGeomean) << "seed " << Seed;
    EXPECT_EQ(Serial.CacheHits, Parallel.CacheHits) << "seed " << Seed;
    EXPECT_EQ(Serial.CacheMisses, Parallel.CacheMisses) << "seed " << Seed;

    // The rendered deterministic payloads must be byte-identical.
    std::string A = core::benchJson(Serial, /*Deterministic=*/true).dump();
    std::string B = core::benchJson(Parallel, /*Deterministic=*/true).dump();
    EXPECT_EQ(A, B) << "seed " << Seed
                    << ": deterministic JSON differs across --jobs";
  }
}

// The imported kernel-family rows ride the same determinism contract: the
// sweep carries POLY and IRREG rows, their cells are byte-stable across
// worker counts, and they fan into their own group geomeans without
// touching the SPEC/APPS aggregates.
TEST(SweepDeterminism, ImportedFamilyRowsAreJobCountInvariant) {
  core::SweepResult Serial = workloads::runFigure8Sweep(sweepOpts(1, 11));
  core::SweepResult Parallel = workloads::runFigure8Sweep(sweepOpts(8, 11));

  size_t FamilyCells = 0;
  ASSERT_EQ(Serial.Cells.size(), Parallel.Cells.size());
  for (size_t I = 0; I < Serial.Cells.size(); ++I) {
    const core::CellResult &X = Serial.Cells[I], &Y = Parallel.Cells[I];
    if (X.Group != "POLY" && X.Group != "IRREG")
      continue;
    ++FamilyCells;
    EXPECT_EQ(X.Benchmark, Y.Benchmark) << "cell " << I;
    EXPECT_EQ(X.Generated, Y.Generated) << X.Benchmark << "/" << X.Variant;
    EXPECT_EQ(X.Correct, Y.Correct) << X.Benchmark << "/" << X.Variant;
    EXPECT_EQ(X.Cycles, Y.Cycles) << X.Benchmark << "/" << X.Variant;
    EXPECT_EQ(X.HotSpeedup, Y.HotSpeedup) << X.Benchmark << "/" << X.Variant;
    if (X.Generated) {
      EXPECT_TRUE(X.Correct) << X.Benchmark << "/" << X.Variant;
    }
  }
  EXPECT_GE(FamilyCells, 6u * core::NumVariants)
      << "the sweep must carry at least six imported family rows";

  // Family groups surface as their own geomeans, identically across jobs.
  auto geoFor = [](const core::SweepResult &R, const char *G) {
    for (const auto &E : R.GroupGeomeans)
      if (E.first == G)
        return E.second;
    return -1.0;
  };
  for (const char *G : {"POLY", "IRREG"}) {
    EXPECT_GT(geoFor(Serial, G), 0.0) << G;
    EXPECT_EQ(geoFor(Serial, G), geoFor(Parallel, G)) << G;
  }
  // And the rendered payload carries the new keys while staying
  // byte-identical across worker counts (covered again in full above).
  std::string Det = core::benchJson(Serial, /*Deterministic=*/true).dump();
  EXPECT_NE(Det.find("\"poly\""), std::string::npos);
  EXPECT_NE(Det.find("\"irreg\""), std::string::npos);
}

TEST(SweepDeterminism, DifferentSeedsChangeInputsNotStructure) {
  core::SweepResult A = workloads::runFigure8Sweep(sweepOpts(1, 1));
  core::SweepResult B = workloads::runFigure8Sweep(sweepOpts(1, 2));
  ASSERT_EQ(A.Cells.size(), B.Cells.size());
  // Every generated cell stays correct under a different input seed.
  for (const core::CellResult &C : B.Cells) {
    if (C.Generated) {
      EXPECT_TRUE(C.Correct) << C.Benchmark << "/" << C.Variant;
    }
  }
  // And at least some measured cycle counts actually move with the inputs.
  bool AnyDiffer = false;
  for (size_t I = 0; I < A.Cells.size(); ++I)
    if (A.Cells[I].Cycles != B.Cells[I].Cycles)
      AnyDiffer = true;
  EXPECT_TRUE(AnyDiffer) << "seed is not reaching the input generators";
}

TEST(SweepDeterminism, MultiTripReusesTheCache) {
  core::SweepOptions One = sweepOpts(2, 1);
  core::SweepOptions Three = One;
  Three.Trips = 3;

  core::SweepResult R1 = workloads::runFigure8Sweep(One);
  core::SweepResult R3 = workloads::runFigure8Sweep(Three);

  // Unique compilations are a property of the matrix, not the trip count.
  EXPECT_EQ(R3.CacheMisses, R1.CacheMisses);
  EXPECT_GT(R3.CacheHits, R1.CacheHits);
  expectCellsIdentical(R1, R3); // Cells report the last trip; same numbers.
}

TEST(SweepDeterminism, DeterministicJsonOmitsWallClockFields) {
  core::SweepResult R = workloads::runFigure8Sweep(sweepOpts(2, 1));
  std::string Det = core::benchJson(R, /*Deterministic=*/true).dump();
  std::string Full = core::benchJson(R, /*Deterministic=*/false).dump();
  EXPECT_EQ(Det.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(Det.find("stage_ms"), std::string::npos);
  EXPECT_EQ(Det.find("\"jobs\""), std::string::npos);
  // Pipeline-observability fields are schedule-dependent: full payload
  // only.
  EXPECT_EQ(Det.find("single_flight_waits"), std::string::npos);
  EXPECT_EQ(Det.find("peak_in_flight"), std::string::npos);
  EXPECT_NE(Full.find("wall_seconds"), std::string::npos);
  EXPECT_NE(Full.find("stage_ms"), std::string::npos);
  EXPECT_NE(Full.find("single_flight_waits"), std::string::npos);
  EXPECT_NE(Full.find("peak_in_flight"), std::string::npos);
  for (const char *Key :
       {"\"schema\"", "\"geomean_overall_speedup\"", "\"cells\"",
        "\"cache\"", "\"seed\"", "\"metrics\""})
    EXPECT_NE(Det.find(Key), std::string::npos) << Key;
}

TEST(SweepDeterminism, CellMetricsCoverEveryLayer) {
  core::SweepResult R = workloads::runFigure8Sweep(sweepOpts(2, 1));
  // The schema v2 contract: every generated cell carries the emu/rtm/sim
  // metric families, and the sweep-level aggregate sums them.
  std::string Det = core::benchJson(R, /*Deterministic=*/true).dump();
  for (const char *Key :
       {"\"emu.instructions\"", "\"emu.vpl.steps\"", "\"emu.mask_density\"",
        "\"rtm.begins\"", "\"sim.cycles\"", "\"sim.mem.accesses\"",
        "\"sim.ipc\""})
    EXPECT_NE(Det.find(Key), std::string::npos) << Key;

  uint64_t AggInstr = 0, CellInstrSum = 0;
  for (const core::CellResult &Cell : R.Cells)
    if (const obs::Counter *C = Cell.Metrics.findCounter("emu.instructions"))
      CellInstrSum += C->value();
  obs::Registry Totals;
  for (const core::CellResult &Cell : R.Cells)
    Totals.merge(Cell.Metrics);
  ASSERT_NE(Totals.findCounter("emu.instructions"), nullptr);
  AggInstr = Totals.findCounter("emu.instructions")->value();
  EXPECT_EQ(AggInstr, CellInstrSum);
  EXPECT_GT(AggInstr, 0u);
}

} // namespace
