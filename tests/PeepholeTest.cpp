//===- tests/PeepholeTest.cpp - Downstream optimizer tests -----------------===//
//
// The peephole passes must (a) actually transform the canonical shapes
// (loop-invariant rebroadcasts, block-local duplicates, dead writes) and
// (b) preserve semantics on every workload and on randomized loops.
//
//===----------------------------------------------------------------------===//

#include "codegen/Peephole.h"
#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "workloads/Benchmarks.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::isa;
using namespace flexvec::codegen;

TEST(Peephole, HoistsLoopInvariantBroadcast) {
  ProgramBuilder B;
  auto Header = B.createLabel();
  auto Exit = B.createLabel();
  B.movImm(Reg::scalar(1), 0);
  B.bind(Header);
  B.cmpImm(Reg::scalar(2), CmpKind::LT, Reg::scalar(1), 100);
  B.brZero(Reg::scalar(2), Exit);
  B.vbroadcastImm(Reg::vector(1), ElemType::I32, 7); // Invariant.
  B.vbinOp(Opcode::VAdd, ElemType::I32, Reg::vector(2), Reg::vector(2),
           Reg::vector(1));
  B.binOpImm(Opcode::AddImm, Reg::scalar(1), Reg::scalar(1), 1);
  B.jmp(Header);
  B.bind(Exit);
  B.movImm(Reg::scalar(3), 0);
  B.vreduce(Opcode::VReduceAdd, ElemType::I32, Reg::scalar(4), Reg::mask(0),
            Reg::vector(2), Reg::scalar(3));
  B.halt();
  Program P = B.finalize();

  PeepholeStats Stats;
  Program Opt = optimizeProgram(P, PeepholeOptions(), &Stats);
  EXPECT_GE(Stats.Hoisted, 1u);

  // Both versions must compute the same reduction.
  mem::Memory M1, M2;
  emu::Machine A(M1), C(M2);
  A.run(P);
  C.run(Opt);
  EXPECT_EQ(A.getScalar(4), C.getScalar(4));
  EXPECT_EQ(A.getScalar(4), 11200); // 16 lanes x 7 x 100 iterations.

  // The broadcast must now execute once, not 100 times.
  mem::Memory M3;
  emu::Machine D(M3);
  emu::ExecResult R = D.run(Opt);
  EXPECT_EQ(R.Stats.countOf(Opcode::VBroadcastImm), 1u);
}

TEST(Peephole, RemovesBlockLocalDuplicates) {
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 5);
  B.binOpImm(Opcode::AddImm, Reg::scalar(2), Reg::scalar(1), 3);
  B.binOpImm(Opcode::AddImm, Reg::scalar(2), Reg::scalar(1), 3); // Dup.
  B.binOp(Opcode::Add, Reg::scalar(3), Reg::scalar(2), Reg::scalar(2));
  B.halt();
  Program P = B.finalize();
  PeepholeStats Stats;
  Program Opt = optimizeProgram(P, PeepholeOptions(), &Stats);
  EXPECT_GE(Stats.CseRemoved, 1u);
  mem::Memory M;
  emu::Machine Mach(M);
  Mach.run(Opt);
  EXPECT_EQ(Mach.getScalar(3), 16);
}

TEST(Peephole, CseRespectsClobberedInputs) {
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 5);
  B.binOpImm(Opcode::AddImm, Reg::scalar(2), Reg::scalar(1), 3); // 8
  B.movImm(Reg::scalar(1), 100);                                 // Clobber.
  B.binOpImm(Opcode::AddImm, Reg::scalar(2), Reg::scalar(1), 3); // 103!
  B.halt();
  Program Opt = optimizeProgram(B.finalize());
  mem::Memory M;
  emu::Machine Mach(M);
  Mach.run(Opt);
  EXPECT_EQ(Mach.getScalar(2), 103);
}

TEST(Peephole, RemovesDeadWrites) {
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 1);
  B.movImm(Reg::scalar(5), 42); // Never read, not a live-out root.
  B.vbroadcastImm(Reg::vector(9), ElemType::I32, 3); // Never read.
  B.binOpImm(Opcode::AddImm, Reg::scalar(2), Reg::scalar(1), 1);
  B.halt();
  Program P = B.finalize();
  PeepholeStats Stats;
  PeepholeOptions Opts;
  Opts.AllScalarsLiveOut = false;
  Opts.LiveOutRegs = {Reg::scalar(2)};
  Program Opt = optimizeProgram(P, Opts, &Stats);
  EXPECT_GE(Stats.DeadRemoved, 2u);
  mem::Memory M;
  emu::Machine Mach(M);
  Mach.run(Opt);
  EXPECT_EQ(Mach.getScalar(2), 2);
}

TEST(Peephole, StoresAndBranchesSurvive) {
  mem::Memory M;
  M.map(0x1000, 4096);
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 0x1000);
  B.movImm(Reg::scalar(2), 9);
  B.store(ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0, Reg::scalar(2));
  B.halt();
  Program Opt = optimizeProgram(B.finalize());
  emu::Machine Mach(M);
  Mach.run(Opt);
  EXPECT_EQ(M.get<int32_t>(0x1000), 9);
}

TEST(Peephole, OptimizedFlexVecMatchesReferenceOnAllBenchmarks) {
  std::vector<workloads::Benchmark> Benchmarks =
      workloads::buildAllBenchmarks(/*IterationScale=*/0.05);
  for (workloads::Benchmark &B : Benchmarks) {
    core::PipelineResult PR = core::compileLoop(*B.F);
    ASSERT_TRUE(PR.FlexVecOpt.has_value()) << B.Name;
    Rng R(0x9E9 + std::hash<std::string>{}(B.Name));
    workloads::BenchInstance In = B.Gen(R);
    if (In.Invocations.size() > 12)
      In.Invocations.resize(12);
    core::RunOutcome Ref =
        core::runReferenceMulti(*B.F, In.Image, In.Invocations);
    core::RunOutcome Opt =
        core::runProgramMulti(*B.F, *PR.FlexVecOpt, In.Image, In.Invocations);
    EXPECT_TRUE(core::outcomesMatch(*B.F, Ref, Opt))
        << B.Name << " optimized program diverges ("
        << PR.OptStats.describe() << ")";
  }
}

TEST(Peephole, ActuallyOptimizesGeneratedCode) {
  auto F = workloads::buildH264Loop();
  core::PipelineResult PR = core::compileLoop(*F);
  EXPECT_GT(PR.OptStats.total(), 0u)
      << "the generated partial vector code should contain hoistable "
         "rebroadcasts";
  EXPECT_LE(PR.FlexVecOpt->Prog.size(), PR.FlexVec->Prog.size());
}
