//===- tests/GenShrinkTest.cpp - Generator + shrinker guarantees -----------===//
//
// Pins down the two properties the scenario mill promises:
//
//  * Determinism: the same seed always generates a byte-identical loop,
//    and the same (loop, predicate) always shrinks to a byte-identical
//    reproducer — a CI failure log names a seed, and replaying that seed
//    reproduces exactly what CI saw.
//
//  * Failure preservation: shrinking minimizes while the *same* failure
//    keeps reproducing. The deliberately-injected-miscompile test corrupts
//    the FlexVec program post-compile (an immediate flip — the classic
//    codegen off-by-one) and requires the shrinker to reach a reproducer
//    of at most 15 DSL lines on which the corrupted program still diverges
//    from the reference interpreter.
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "gen/Differential.h"
#include "gen/Gen.h"
#include "gen/Shrink.h"
#include "ir/Parser.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace flexvec;

namespace {

std::string dslFor(uint64_t Seed, const gen::Envelope &E) {
  gen::GeneratedLoop G = gen::generateLoop(Seed, E);
  return ir::printLoopDsl(*G.F);
}

int dslLines(const std::string &Dsl) {
  return static_cast<int>(std::count(Dsl.begin(), Dsl.end(), '\n'));
}

TEST(GenDeterminism, SameSeedSameLoopBothEnvelopes) {
  for (const gen::Envelope &E :
       {gen::Envelope::classic(), gen::Envelope::widened()}) {
    for (uint64_t Seed = 0; Seed < 12; ++Seed)
      EXPECT_EQ(dslFor(Seed, E), dslFor(Seed, E)) << "seed " << Seed;
  }
}

TEST(GenDeterminism, SeedsActuallyVary) {
  // Not a distribution test — just that the seed feeds through: 12 seeds
  // must produce more than one distinct loop.
  std::vector<std::string> Dsls;
  for (uint64_t Seed = 0; Seed < 12; ++Seed)
    Dsls.push_back(dslFor(Seed, gen::Envelope::widened()));
  std::sort(Dsls.begin(), Dsls.end());
  Dsls.erase(std::unique(Dsls.begin(), Dsls.end()), Dsls.end());
  EXPECT_GT(Dsls.size(), 1u);
}

TEST(GenDeterminism, CloneLoopPreservesDsl) {
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    gen::GeneratedLoop G = gen::generateLoop(Seed, gen::Envelope::widened());
    std::unique_ptr<ir::LoopFunction> C = gen::cloneLoop(*G.F);
    EXPECT_EQ(ir::printLoopDsl(*G.F), ir::printLoopDsl(*C))
        << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Shrinker basics on a cheap syntactic predicate.
//===----------------------------------------------------------------------===//

// Finds a widened-envelope seed whose loop has a conflict block (an "rw"
// array), so the predicate "still stores to rw" is satisfiable.
uint64_t seedWithConflict() {
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    gen::GeneratedLoop G = gen::generateLoop(Seed, gen::Envelope::widened());
    if (G.HasConflict)
      return Seed;
  }
  ADD_FAILURE() << "no conflict loop in 64 seeds";
  return 0;
}

TEST(Shrink, GreedyShrinkKeepsPredicateAndIsDeterministic) {
  uint64_t Seed = seedWithConflict();
  gen::GeneratedLoop G = gen::generateLoop(Seed, gen::Envelope::widened());
  auto StoresToRw = [](const ir::LoopFunction &F) {
    return ir::printLoopDsl(F).find("rw[") != std::string::npos;
  };
  ASSERT_TRUE(StoresToRw(*G.F));

  gen::ShrinkResult A = gen::shrinkLoop(*G.F, StoresToRw);
  gen::ShrinkResult B = gen::shrinkLoop(*G.F, StoresToRw);
  EXPECT_TRUE(StoresToRw(*A.F));
  EXPECT_FALSE(A.BudgetExhausted);
  // Deterministic: same loop + same predicate -> byte-identical reproducer
  // and identical search statistics.
  EXPECT_EQ(ir::printLoopDsl(*A.F), ir::printLoopDsl(*B.F));
  EXPECT_EQ(A.Attempts, B.Attempts);
  EXPECT_EQ(A.Accepted, B.Accepted);
  // It actually minimized: everything except the store region is gone.
  EXPECT_LT(dslLines(ir::printLoopDsl(*A.F)),
            dslLines(ir::printLoopDsl(*G.F)));
  // And the reproducer still round-trips through the DSL.
  std::string Dsl = ir::printLoopDsl(*A.F);
  ir::ParseResult P = ir::parseLoop(Dsl);
  ASSERT_TRUE(P) << P.Error;
  EXPECT_EQ(ir::printLoopDsl(*P.F), Dsl);
}

TEST(Shrink, BudgetStopsTheSearch) {
  uint64_t Seed = seedWithConflict();
  gen::GeneratedLoop G = gen::generateLoop(Seed, gen::Envelope::widened());
  gen::ShrinkOptions SO;
  SO.MaxAttempts = 1;
  gen::ShrinkResult R = gen::shrinkLoop(
      *G.F, [](const ir::LoopFunction &) { return true; }, SO);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_LE(R.Attempts, 1);
}

//===----------------------------------------------------------------------===//
// Deliberately injected miscompile.
//===----------------------------------------------------------------------===//

/// Corrupts the first non-branch instruction carrying a non-zero immediate
/// in \p CL's program (Imm += 1). Returns false if there is none.
bool corruptFirstImmediate(codegen::CompiledLoop &CL) {
  std::vector<isa::Instruction> Instrs = CL.Prog.instructions();
  for (isa::Instruction &I : Instrs) {
    if (I.isBranch() || I.Imm == 0)
      continue;
    I.Imm += 1;
    CL.Prog = isa::Program(std::move(Instrs));
    return true;
  }
  return false;
}

/// The divergence predicate the shrinker preserves: compile the candidate,
/// corrupt its FlexVec program the same way, and check whether the
/// corrupted program still diverges from the reference interpreter on
/// convention inputs (run error and budget blowout count as divergence —
/// corrupting an index or trip immediate can derail the loop entirely).
bool corruptedFlexVecDiverges(const ir::LoopFunction &F) {
  core::PipelineResult PR = core::compileLoop(F, /*RtmTile=*/64);
  if (!PR.Plan.Vectorizable || !PR.FlexVec)
    return false;
  codegen::CompiledLoop Bad = *PR.FlexVec;
  if (!corruptFirstImmediate(Bad))
    return false;

  Rng R(99);
  gen::InputPlan Plan;
  Plan.Trip = 128;
  mem::Memory M;
  ir::Bindings B = ir::Bindings::forFunction(F);
  gen::buildConventionInputs(F, R, Plan, M, B);

  core::RunOutcome Ref = core::runReference(F, M, B);
  if (!Ref.Ok)
    return false; // The candidate itself faults; not a valid reproducer.
  core::RunOutcome Out = core::runProgram(Bad, M, B, /*Sink=*/nullptr,
                                          /*MaxInstructions=*/1ULL << 22);
  return !Out.Ok || !core::outcomesMatch(F, Ref, Out);
}

TEST(Shrink, InjectedMiscompileShrinksToSmallReproducer) {
  // Find a seed whose generated loop exposes the corruption. The immediate
  // flip is not observable on every loop (the immediate may feed dead
  // code), so probe a fixed seed range; the range is part of the test's
  // determinism.
  uint64_t Seed = ~0ULL;
  for (uint64_t S = 0; S < 32; ++S) {
    gen::GeneratedLoop G = gen::generateLoop(S, gen::Envelope::widened());
    if (corruptedFlexVecDiverges(*G.F)) {
      Seed = S;
      break;
    }
  }
  ASSERT_NE(Seed, ~0ULL) << "no seed in [0,32) exposes the corruption";

  gen::GeneratedLoop G = gen::generateLoop(Seed, gen::Envelope::widened());
  gen::ShrinkResult R1 = gen::shrinkLoop(*G.F, corruptedFlexVecDiverges);
  gen::ShrinkResult R2 = gen::shrinkLoop(*G.F, corruptedFlexVecDiverges);

  std::string Dsl = ir::printLoopDsl(*R1.F);
  // The acceptance bar: a deliberately injected miscompile shrinks to a
  // reproducer of at most 15 DSL lines...
  EXPECT_LE(dslLines(Dsl), 15) << Dsl;
  // ...that still reproduces the original divergence class...
  EXPECT_TRUE(corruptedFlexVecDiverges(*R1.F)) << Dsl;
  // ...deterministically...
  EXPECT_EQ(Dsl, ir::printLoopDsl(*R2.F));
  EXPECT_EQ(R1.Attempts, R2.Attempts);
  // ...and the reproducer parses back to itself.
  ir::ParseResult P = ir::parseLoop(Dsl);
  ASSERT_TRUE(P) << P.Error;
  EXPECT_EQ(ir::printLoopDsl(*P.F), Dsl);
}

//===----------------------------------------------------------------------===//
// checkLoop failure-classification plumbing (what flexvec-fuzz keys its
// shrink predicate on).
//===----------------------------------------------------------------------===//

TEST(CheckLoop, CleanLoopReportsNone) {
  gen::GeneratedLoop G = gen::generateLoop(3, gen::Envelope::widened());
  gen::CheckOptions CO;
  CO.StormSeed = 42;
  gen::CheckResult R = gen::checkLoop(*G.F, 3, CO);
  EXPECT_TRUE(R.ok()) << gen::failureClassName(R.Class) << " " << R.Detail;
}

TEST(CheckLoop, SameFailureComparesClassAndVariant) {
  gen::CheckResult A, B;
  A.Class = gen::FailureClass::Mismatch;
  A.Variant = "flexvec";
  B.Class = gen::FailureClass::Mismatch;
  B.Variant = "flexvec-rtm";
  EXPECT_FALSE(A.sameFailure(B));
  B.Variant = "flexvec";
  EXPECT_TRUE(A.sameFailure(B));
  B.Class = gen::FailureClass::RunError;
  EXPECT_FALSE(A.sameFailure(B));
}

} // namespace
