//===- tests/PipelineEquivalenceTest.cpp - Driver vs legacy generators ----===//
//
// Proves the pass-pipeline refactor is behavior-preserving: the four
// monolithic generators that predate the driver are frozen VERBATIM in
// namespace `legacy` below, and for every loop in examples/loops/ and
// tests/corpus/ (at two RTM tile sizes) the driver's emitted Programs,
// Kinds, and Notes must be byte-identical to theirs — including the
// peepholed FlexVec program.
//
// Do not "fix" or modernize the legacy copies: their only job is to stay
// exactly what shipped before src/driver existed. If codegen changes
// intentionally, this test is updated together with tests/golden/.
//
// The same sweep also runs the post-codegen verifier over every generated
// program (it must be clean) and checks that the verifier actually rejects
// malformed programs.
//
//===----------------------------------------------------------------------===//

#include "codegen/Peephole.h"
#include "codegen/ScalarCodeGen.h"
#include "codegen/VectorEmitter.h"
#include "core/Pipeline.h"
#include "driver/Verifier.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace flexvec;

// --- Frozen pre-driver generators (verbatim from codegen/Generators.cpp) ---

namespace legacy {

using namespace flexvec::codegen;
using namespace flexvec::ir;
using namespace flexvec::isa;
using flexvec::analysis::VectorizationPlan;

Reg tripReg(const LoopFunction &F) {
  return scalarParamReg(F.tripCountScalar());
}

/// Scalars read by \p E.
void scalarReadsOf(const Expr *E, std::vector<int> &Out) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
  case ExprKind::ConstFloat:
  case ExprKind::IndexRef:
    return;
  case ExprKind::ScalarRef:
    Out.push_back(E->ScalarId);
    return;
  case ExprKind::ArrayRef:
    scalarReadsOf(E->Index, Out);
    return;
  case ExprKind::Binary:
  case ExprKind::Compare:
  case ExprKind::LogicalAnd:
    scalarReadsOf(E->Lhs, Out);
    scalarReadsOf(E->Rhs, Out);
    return;
  }
}

void assignedIn(const std::vector<Stmt *> &Stmts, std::vector<bool> &Set) {
  for (const Stmt *S : Stmts) {
    if (S->Kind == StmtKind::AssignScalar)
      Set[S->ScalarId] = true;
    if (S->Kind == StmtKind::If) {
      assignedIn(S->Then, Set);
      assignedIn(S->Else, Set);
    }
  }
}

bool containsStmt(const Stmt *Root, int Id) {
  if (Root->Id == Id)
    return true;
  if (Root->Kind != StmtKind::If)
    return false;
  for (const Stmt *C : Root->Then)
    if (containsStmt(C, Id))
      return true;
  for (const Stmt *C : Root->Else)
    if (containsStmt(C, Id))
      return true;
  return false;
}

bool hasStoreIn(const std::vector<Stmt *> &Stmts) {
  for (const Stmt *S : Stmts) {
    if (S->Kind == StmtKind::StoreArray)
      return true;
    if (S->Kind == StmtKind::If &&
        (hasStoreIn(S->Then) || hasStoreIn(S->Else)))
      return true;
  }
  return false;
}

std::optional<CompiledLoop>
generateTraditional(const LoopFunction &F, const VectorizationPlan &Plan) {
  if (!Plan.Vectorizable || Plan.needsFlexVec())
    return std::nullopt; // Exactly the loops the baseline cannot vectorize.

  CompiledLoop Out;
  Out.Kind = CodeGenKind::Traditional;
  ProgramBuilder B;
  VectorEmitter::Options Opts;
  Opts.UseFirstFaulting = false;
  VectorEmitter Em(B, F, Plan, Opts);

  ProgramBuilder::Label VecLoop = B.createLabel();
  ProgramBuilder::Label VecExit = B.createLabel();
  Reg T = Reg::scalar(25);

  Em.emitPreheader();
  B.bind(VecLoop);
  B.cmp(T, CmpKind::LT, inductionReg(), tripReg(F));
  B.brZero(T, VecExit);
  Em.emitChunkProlog(tripReg(F));
  Em.emitBody();
  Em.emitChunkEpilog();
  B.jmp(VecLoop);
  B.bind(VecExit);
  Em.emitLiveOuts();
  B.halt();

  Out.Prog = B.finalize();
  Out.Notes = "traditional masked vectorization; " + Em.notes();
  return Out;
}

std::optional<CompiledLoop>
generateFlexVec(const LoopFunction &F, const VectorizationPlan &Plan,
                std::string *WhyNot) {
  if (!Plan.Vectorizable) {
    if (WhyNot)
      *WhyNot = "loop is not vectorizable: " + Plan.Reason;
    return std::nullopt;
  }

  bool HasSpec = !Plan.SpeculativeLoadNodes.empty();
  if (HasSpec && !Plan.Reductions.empty()) {
    if (WhyNot)
      *WhyNot = "reductions combined with speculative loads are "
                "unsupported (the scalar fallback cannot undo optimistic "
                "accumulation)";
    return std::nullopt;
  }

  CompiledLoop Out;
  Out.Kind = CodeGenKind::FlexVec;
  ProgramBuilder B;
  ProgramBuilder::Label VecLoop = B.createLabel();
  ProgramBuilder::Label VecExit = B.createLabel();
  ProgramBuilder::Label HaltL = B.createLabel();
  ProgramBuilder::Label ScalarEntry = B.createLabel();

  VectorEmitter::Options Opts;
  Opts.UseFirstFaulting = true;
  Opts.HasFaultBail = HasSpec;
  Opts.FaultBail = ScalarEntry;
  VectorEmitter Em(B, F, Plan, Opts);
  Reg T = Reg::scalar(25);

  Em.emitPreheader();
  B.bind(VecLoop);
  B.cmp(T, CmpKind::LT, inductionReg(), tripReg(F));
  B.brZero(T, VecExit);
  Em.emitChunkProlog(tripReg(F));
  Em.emitBody();
  Em.emitChunkEpilog();
  if (!Plan.EarlyExits.empty())
    B.brNonZero(Em.breakFlag(), VecExit).Comment = "a lane broke: stop";
  B.jmp(VecLoop);

  B.bind(VecExit);
  Em.emitLiveOuts();
  B.jmp(HaltL);

  B.bind(ScalarEntry);
  emitScalarLoopBody(B, F, tripReg(F), HaltL);

  B.bind(HaltL);
  B.halt();

  Out.Prog = B.finalize();
  Out.Notes = "FlexVec partial vector code; " + Em.notes() +
              (HasSpec ? "; first-faulting loads with scalar fallback" : "");
  return Out;
}

std::optional<CompiledLoop>
generateFlexVecRtm(const LoopFunction &F, const VectorizationPlan &Plan,
                   unsigned TileIterations) {
  if (!Plan.Vectorizable)
    return std::nullopt;

  CompiledLoop Out;
  Out.Kind = CodeGenKind::FlexVecRtm;
  ProgramBuilder B;
  ProgramBuilder::Label Outer = B.createLabel();
  ProgramBuilder::Label InnerLoop = B.createLabel();
  ProgramBuilder::Label InnerDone = B.createLabel();
  ProgramBuilder::Label AbortHandler = B.createLabel();
  ProgramBuilder::Label VecExit = B.createLabel();
  ProgramBuilder::Label HaltL = B.createLabel();

  VectorEmitter::Options Opts;
  Opts.UseFirstFaulting = false;
  VectorEmitter Em(B, F, Plan, Opts);

  Reg T = Reg::scalar(25);
  Reg TileEnd = Reg::scalar(0);

  Em.emitPreheader();
  B.bind(Outer);
  B.cmp(T, CmpKind::LT, inductionReg(), tripReg(F));
  B.brZero(T, VecExit);
  B.binOpImm(Opcode::AddImm, TileEnd, inductionReg(),
             static_cast<int64_t>(TileIterations));
  B.binOp(Opcode::Min, TileEnd, TileEnd, tripReg(F)).Comment =
      "tile_end = min(i + tile, n)";
  B.xbegin(AbortHandler).Comment = "speculative tile begins";

  B.bind(InnerLoop);
  B.cmp(T, CmpKind::LT, inductionReg(), TileEnd);
  B.brZero(T, InnerDone);
  Em.emitChunkProlog(TileEnd);
  Em.emitBody();
  Em.emitChunkEpilog();
  if (!Plan.EarlyExits.empty())
    B.brNonZero(Em.breakFlag(), InnerDone);
  B.jmp(InnerLoop);

  B.bind(InnerDone);
  B.mov(inductionReg(), TileEnd).Comment = "i = tile_end";
  B.xend().Comment = "tile commits";
  if (!Plan.EarlyExits.empty())
    B.brNonZero(Em.breakFlag(), VecExit);
  B.jmp(Outer);

  B.bind(AbortHandler);
  emitScalarLoopBody(B, F, TileEnd, VecExit);
  B.jmp(Outer);

  B.bind(VecExit);
  Em.emitLiveOuts();
  B.jmp(HaltL);
  B.bind(HaltL);
  B.halt();

  Out.Prog = B.finalize();
  Out.Notes = "FlexVec over RTM; tile=" + std::to_string(TileIterations) +
              "; " + Em.notes();
  return Out;
}

std::optional<CompiledLoop>
generateSpeculative(const LoopFunction &F, const VectorizationPlan &Plan) {
  if (!Plan.Vectorizable)
    return std::nullopt;
  if (!Plan.needsFlexVec())
    return std::nullopt; // Same as traditional; nothing to speculate on.

  const std::vector<Stmt *> &Body = F.body();

  struct Check {
    int Top;
    enum { CondUpdate, Conflict, Exit } Kind;
    const analysis::CondUpdateVpl *CU = nullptr;
    const analysis::MemConflictVpl *MC = nullptr;
    const analysis::EarlyExitInfo *EE = nullptr;
    const Expr *GuardCond = nullptr;
    bool Invert = false;
  };
  std::vector<Check> Checks;

  auto readsDefinedLater = [&](const Expr *E, int FromTop,
                               const std::vector<int> &Allowed) {
    std::vector<bool> Later(F.scalars().size(), false);
    std::vector<Stmt *> Tail(Body.begin() + FromTop, Body.end());
    assignedIn(Tail, Later);
    std::vector<int> Reads;
    scalarReadsOf(E, Reads);
    for (int S : Reads) {
      bool IsAllowed = false;
      for (int A : Allowed)
        IsAllowed |= A == S;
      if (Later[S] && !IsAllowed)
        return true;
    }
    return false;
  };

  for (const auto &CU : Plan.CondUpdateVpls) {
    const Stmt *TopGuard = nullptr;
    for (int I = CU.FirstTop; I <= CU.LastTop; ++I)
      if (containsStmt(Body[I], CU.Updates[0].UpdateNode))
        TopGuard = Body[I];
    if (!TopGuard || TopGuard->Kind != StmtKind::If)
      return std::nullopt;
    std::vector<int> Allowed;
    for (const auto &U : CU.Updates)
      Allowed.push_back(U.ScalarId);
    if (readsDefinedLater(TopGuard->Cond, CU.FirstTop, Allowed))
      return std::nullopt;
    Check C;
    C.Top = CU.FirstTop;
    C.Kind = Check::CondUpdate;
    C.CU = &CU;
    C.GuardCond = TopGuard->Cond;
    Checks.push_back(C);
  }
  for (const auto &MC : Plan.MemConflictVpls) {
    std::vector<int> Allowed;
    if (readsDefinedLater(MC.StoreIndex, MC.FirstTop, Allowed))
      return std::nullopt;
    for (const Expr *L : MC.LoadIndices)
      if (readsDefinedLater(L, MC.FirstTop, Allowed))
        return std::nullopt;
    Check C;
    C.Top = MC.FirstTop;
    C.Kind = Check::Conflict;
    C.MC = &MC;
    Checks.push_back(C);
  }
  for (const auto &EE : Plan.EarlyExits) {
    if (EE.BreakInElse)
      return std::nullopt; // Inverted exit checks are unsupported here.
    int Top = -1;
    for (size_t I = 0; I < Body.size(); ++I)
      if (Body[I]->Id == EE.GuardNode)
        Top = static_cast<int>(I);
    if (Top < 0)
      return std::nullopt; // Nested exit guard.
    const Stmt *Guard = Body[Top];
    std::vector<int> Allowed;
    if (readsDefinedLater(Guard->Cond, Top, Allowed))
      return std::nullopt;
    Check C;
    C.Top = Top;
    C.Kind = Check::Exit;
    C.EE = &EE;
    C.GuardCond = Guard->Cond;
    C.Invert = EE.BreakInElse;
    Checks.push_back(C);
  }
  int LastCheck = 0;
  for (const Check &C : Checks)
    LastCheck = std::max(LastCheck, C.Top);
  for (int I = 0; I < LastCheck; ++I)
    if (hasStoreIn({Body[static_cast<size_t>(I)]}))
      return std::nullopt;

  CompiledLoop Out;
  Out.Kind = CodeGenKind::Speculative;
  ProgramBuilder B;
  ProgramBuilder::Label VecLoop = B.createLabel();
  ProgramBuilder::Label VecExit = B.createLabel();
  ProgramBuilder::Label ScalarChunk = B.createLabel();
  ProgramBuilder::Label HaltL = B.createLabel();

  VectorEmitter::Options Opts;
  Opts.UseFirstFaulting = false;
  Opts.StraightlineOnly = true;
  VectorEmitter Em(B, F, Plan, Opts);

  Reg T = Reg::scalar(25);
  Reg ChunkEnd = Reg::scalar(0);
  Reg DepFlag = Reg::scalar(1);

  Em.emitPreheader();
  B.bind(VecLoop);
  B.cmp(T, CmpKind::LT, inductionReg(), tripReg(F));
  B.brZero(T, VecExit);
  Em.emitChunkProlog(tripReg(F));
  B.movImm(DepFlag, 0);

  std::sort(Checks.begin(), Checks.end(),
            [](const Check &A, const Check &B2) { return A.Top < B2.Top; });

  size_t NextStmt = 0;
  for (const Check &C : Checks) {
    while (NextStmt < Body.size() && static_cast<int>(NextStmt) < C.Top) {
      Em.emitStraightlineTopLevel(Body[NextStmt]);
      ++NextStmt;
    }
    switch (C.Kind) {
    case Check::CondUpdate:
    case Check::Exit:
      Em.emitSpecCondCheck(C.GuardCond, DepFlag);
      break;
    case Check::Conflict:
      Em.emitSpecConflictCheck(*C.MC, DepFlag);
      break;
    }
  }
  B.brNonZero(DepFlag, ScalarChunk).Comment =
      "dependence may fire: roll back to scalar for this chunk";
  while (NextStmt < Body.size()) {
    Em.emitStraightlineTopLevel(Body[NextStmt]);
    ++NextStmt;
  }
  Em.emitChunkEpilog();
  B.jmp(VecLoop);

  B.bind(ScalarChunk);
  B.binOpImm(Opcode::AddImm, ChunkEnd, inductionReg(),
             static_cast<int64_t>(Em.vl()));
  B.binOp(Opcode::Min, ChunkEnd, ChunkEnd, tripReg(F));
  emitScalarLoopBody(B, F, ChunkEnd, VecExit);
  B.jmp(VecLoop);

  B.bind(VecExit);
  Em.emitLiveOuts();
  B.jmp(HaltL);
  B.bind(HaltL);
  B.halt();

  Out.Prog = B.finalize();
  Out.Notes = "PACT'13-style speculative vectorization: all-or-nothing "
              "chunks; " + Em.notes();
  return Out;
}

} // namespace legacy

// --- The equivalence sweep --------------------------------------------------

namespace {

std::string readFile(const std::string &Path, bool *Ok = nullptr) {
  std::ifstream In(Path);
  if (Ok)
    *Ok = In.good();
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

struct LoopCase {
  const char *Dir;  ///< Relative to FLEXVEC_SOURCE_DIR.
  const char *Name; ///< Stem of the .fv file.
};

const LoopCase AllLoops[] = {
    {"examples/loops", "argmin"},
    {"examples/loops", "find_first"},
    {"examples/loops", "histogram"},
    {"tests/corpus", "argmin_key2"},
    {"tests/corpus", "exit_then_update"},
    {"tests/corpus", "find_sentinel"},
    {"tests/corpus", "histogram_weighted"},
    {"tests/corpus", "masked_else"},
    {"tests/corpus", "update_conflict"},
};

ir::ParseResult parseCase(const LoopCase &C) {
  std::string Path = std::string(FLEXVEC_SOURCE_DIR) + "/" + C.Dir + "/" +
                     C.Name + ".fv";
  bool Ok = false;
  std::string Source = readFile(Path, &Ok);
  EXPECT_TRUE(Ok) << "cannot read " << Path;
  return ir::parseLoop(Source);
}

void expectSameProgram(const char *What, const char *Loop,
                       const std::optional<codegen::CompiledLoop> &Legacy,
                       const std::optional<codegen::CompiledLoop> &Driver) {
  ASSERT_EQ(Legacy.has_value(), Driver.has_value())
      << Loop << " " << What << ": generated-ness differs";
  if (!Legacy)
    return;
  EXPECT_EQ(static_cast<int>(Legacy->Kind), static_cast<int>(Driver->Kind))
      << Loop << " " << What;
  EXPECT_EQ(Legacy->Notes, Driver->Notes) << Loop << " " << What;
  EXPECT_EQ(Legacy->Prog.disassemble(), Driver->Prog.disassemble())
      << Loop << " " << What << ": emitted program differs";
}

void expectVerifies(const char *What, const char *Loop,
                    const codegen::CompiledLoop &C) {
  std::vector<std::string> Errors = driver::verifyProgram(C.Prog);
  EXPECT_TRUE(Errors.empty())
      << Loop << " " << What << " failed verification: " << Errors.front();
}

void expectVerifies(const char *What, const char *Loop,
                    const std::optional<codegen::CompiledLoop> &C) {
  if (C)
    expectVerifies(What, Loop, *C);
}

class PipelineEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(PipelineEquivalence, DriverMatchesLegacyGenerators) {
  unsigned RtmTile = GetParam();
  for (const LoopCase &C : AllLoops) {
    ir::ParseResult P = parseCase(C);
    ASSERT_TRUE(P) << C.Name << ": " << P.Error;
    const ir::LoopFunction &F = *P.F;

    // Pinned to the 512-bit width: the frozen legacy generators emit at
    // the isa::VectorBytes constant, so a FLEXVEC_VL override would
    // compare programs built for different widths.
    driver::DriverOptions DOpts;
    DOpts.RtmTile = RtmTile;
    DOpts.Vec = isa::VectorConfig();
    core::PipelineResult PR = driver::compileLoop(F, DOpts);

    // Legacy path: analysis exactly as the old core/Pipeline.cpp ran it.
    pdg::Pdg G(F);
    analysis::VectorizationPlan Plan = analysis::analyzeLoop(G);

    auto Traditional = legacy::generateTraditional(F, Plan);
    auto Speculative = legacy::generateSpeculative(F, Plan);
    std::string WhyNot;
    auto FlexVec = legacy::generateFlexVec(F, Plan, &WhyNot);
    auto Rtm = legacy::generateFlexVecRtm(F, Plan, RtmTile);

    expectSameProgram("traditional", C.Name, Traditional, PR.Traditional);
    expectSameProgram("speculative", C.Name, Speculative, PR.Speculative);
    expectSameProgram("flexvec", C.Name, FlexVec, PR.FlexVec);
    expectSameProgram("flexvec-rtm", C.Name, Rtm, PR.Rtm);

    // The legacy FlexVec decline diagnostic surface is preserved.
    if (!FlexVec && !WhyNot.empty()) {
      ASSERT_EQ(PR.Diagnostics.size(), 1u) << C.Name;
      EXPECT_EQ(PR.Diagnostics[0], "flexvec: " + WhyNot) << C.Name;
    }

    // Peepholed FlexVec matches optimizing the legacy program.
    ASSERT_EQ(FlexVec.has_value(), PR.FlexVecOpt.has_value()) << C.Name;
    if (FlexVec) {
      codegen::PeepholeStats Stats;
      isa::Program Opt = codegen::optimizeProgram(
          FlexVec->Prog, codegen::PeepholeOptions(), &Stats);
      EXPECT_EQ(Opt.disassemble(), PR.FlexVecOpt->Prog.disassemble())
          << C.Name << " flexvec-opt";
      EXPECT_EQ(FlexVec->Notes + "; peephole: " + Stats.describe(),
                PR.FlexVecOpt->Notes)
          << C.Name;
    }

    // Every program the driver emits passes the structural verifier.
    expectVerifies("scalar", C.Name, PR.Scalar);
    expectVerifies("traditional", C.Name, PR.Traditional);
    expectVerifies("speculative", C.Name, PR.Speculative);
    expectVerifies("flexvec", C.Name, PR.FlexVec);
    expectVerifies("flexvec-rtm", C.Name, PR.Rtm);
    expectVerifies("flexvec-opt", C.Name, PR.FlexVecOpt);

    // No refusal is silent: every variant the driver did not generate has
    // a missed `lower` remark naming the strategy.
    struct {
      const char *Variant;
      bool Generated;
    } Variants[] = {{"traditional", PR.Traditional.has_value()},
                    {"speculative", PR.Speculative.has_value()},
                    {"flexvec", PR.FlexVec.has_value()},
                    {"flexvec-rtm", PR.Rtm.has_value()}};
    for (const auto &V : Variants) {
      bool Found = false;
      for (const driver::Remark &R : PR.Remarks.remarks()) {
        if (R.Pass != "lower" || R.Variant != V.Variant)
          continue;
        if (V.Generated && R.Kind == driver::RemarkKind::Applied)
          Found = true;
        if (!V.Generated && R.Kind == driver::RemarkKind::Missed)
          Found = true;
      }
      EXPECT_TRUE(Found) << C.Name << ": variant " << V.Variant
                         << (V.Generated ? " has no applied remark"
                                         : " declined silently");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RtmTiles, PipelineEquivalence,
                         ::testing::Values(64u, 192u));

TEST(ProgramVerifier, RejectsMalformedPrograms) {
  // Branch out of range.
  {
    isa::Instruction I;
    I.Op = isa::Opcode::Jmp;
    I.Target = 5;
    isa::Program P({I});
    EXPECT_FALSE(driver::verifyProgram(P).empty());
  }
  // Mask-producing op writing hard-wired k0.
  {
    isa::ProgramBuilder B;
    B.kset(isa::Reg::mask(0), 0xff);
    B.halt();
    EXPECT_FALSE(driver::verifyProgram(B.finalize()).empty());
  }
  // Wrong operand class: vector op reading a scalar register.
  {
    isa::Instruction I;
    I.Op = isa::Opcode::VAdd;
    I.Dst = isa::Reg::vector(16);
    I.Src1 = isa::Reg::scalar(3);
    I.Src2 = isa::Reg::vector(17);
    isa::Instruction H;
    H.Op = isa::Opcode::Halt;
    isa::Program P({I, H});
    EXPECT_FALSE(driver::verifyProgram(P).empty());
  }
  // First-faulting load with the hard-wired mask as its in/out operand.
  {
    isa::Instruction I;
    I.Op = isa::Opcode::VMovFF;
    I.Dst = isa::Reg::vector(16);
    I.Src1 = isa::Reg::scalar(14);
    I.MaskReg = isa::Reg::mask(0);
    isa::Instruction H;
    H.Op = isa::Opcode::Halt;
    isa::Program P({I, H});
    EXPECT_FALSE(driver::verifyProgram(P).empty());
  }
  // Program that can fall off the end.
  {
    isa::Instruction I;
    I.Op = isa::Opcode::MovImm;
    I.Dst = isa::Reg::scalar(2);
    isa::Program P({I});
    EXPECT_FALSE(driver::verifyProgram(P).empty());
  }
  // A minimal well-formed program is clean.
  {
    isa::ProgramBuilder B;
    B.movImm(isa::Reg::scalar(2), 7);
    B.halt();
    EXPECT_TRUE(driver::verifyProgram(B.finalize()).empty());
  }
}

} // namespace
