//===- tests/ProfilerTest.cpp - Loop profiler unit tests -------------------===//

#include "pdg/Pdg.h"
#include "profile/LoopProfiler.h"
#include "workloads/PaperLoops.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::profile;
using namespace flexvec::workloads;

TEST(Profiler, TripCountAndUpdateEvents) {
  auto F = buildH264Loop();
  pdg::Pdg P(*F);
  analysis::VectorizationPlan Plan = analysis::analyzeLoop(P);
  ASSERT_TRUE(Plan.Vectorizable);

  Rng R(1);
  LoopInputs In = genH264Inputs(*F, R, /*N=*/2000, /*UpdateProb=*/0.05);
  LoopProfiler Prof(*F, Plan);
  Prof.profileRun(In.Image, In.B);

  EXPECT_EQ(Prof.counts().Invocations, 1u);
  EXPECT_EQ(Prof.counts().Iterations, 2000u);
  // ~5% update rate, generated exactly by the input builder's coin flips.
  EXPECT_GT(Prof.counts().CondUpdateEvents, 60u);
  EXPECT_LT(Prof.counts().CondUpdateEvents, 140u);

  analysis::LoopProfile Summary = Prof.summarize(/*Coverage=*/0.6);
  EXPECT_DOUBLE_EQ(Summary.AvgTripCount, 2000.0);
  EXPECT_GT(Summary.EffectiveVL, 10.0);
  EXPECT_LT(Summary.EffectiveVL, 35.0);
}

TEST(Profiler, ZeroUpdateProbabilityGivesHugeEffectiveVL) {
  auto F = buildH264Loop();
  pdg::Pdg P(*F);
  analysis::VectorizationPlan Plan = analysis::analyzeLoop(P);
  Rng R(2);
  LoopInputs In = genH264Inputs(*F, R, 1000, 0.0);
  LoopProfiler Prof(*F, Plan);
  Prof.profileRun(In.Image, In.B);
  EXPECT_EQ(Prof.counts().CondUpdateEvents, 0u);
  EXPECT_DOUBLE_EQ(Prof.summarize(0.5).EffectiveVL, 1000.0);
}

TEST(Profiler, ConflictEventsTrackWindowedReuse) {
  auto F = buildConflictLoop();
  pdg::Pdg P(*F);
  analysis::VectorizationPlan Plan = analysis::analyzeLoop(P);
  ASSERT_EQ(Plan.MemConflictVpls.size(), 1u);

  // High conflict probability → many events; zero → nearly none (random
  // collisions within 16 iterations over a small table are still possible).
  for (double Prob : {0.0, 0.5}) {
    Rng R(3);
    LoopInputs In = genConflictInputs(*F, R, 2000, Prob, /*TableSize=*/4096);
    LoopProfiler Prof(*F, Plan);
    Prof.profileRun(In.Image, In.B);
    if (Prob == 0.0)
      EXPECT_LT(Prof.counts().ConflictEvents, 50u);
    else
      EXPECT_GT(Prof.counts().ConflictEvents, 500u);
  }
}

TEST(Profiler, BreakEventsAndMultiInvocation) {
  auto F = buildEarlyExitLoop();
  pdg::Pdg P(*F);
  analysis::VectorizationPlan Plan = analysis::analyzeLoop(P);

  Rng R(4);
  LoopProfiler Prof(*F, Plan);
  for (int Inv = 0; Inv < 10; ++Inv) {
    LoopInputs In = genEarlyExitInputs(*F, R, 200, /*MatchPos=*/50);
    Prof.profileRun(In.Image, In.B);
  }
  EXPECT_EQ(Prof.counts().Invocations, 10u);
  EXPECT_EQ(Prof.counts().BreakEvents, 10u);
  EXPECT_EQ(Prof.counts().Iterations, 510u); // 51 per invocation.
  analysis::LoopProfile S = Prof.summarize(0.5);
  EXPECT_DOUBLE_EQ(S.AvgTripCount, 51.0);
}
