//===- tests/MemoryRtmTest.cpp - Paged memory and RTM unit tests -----------===//

#include "memory/Memory.h"
#include "rtm/Transaction.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::mem;
using namespace flexvec::rtm;

TEST(Memory, UnmappedAccessFaults) {
  Memory M;
  int32_t V;
  AccessResult R = M.readValue(0x1000, V);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.FaultAddr, 0x1000u);
}

TEST(Memory, MapReadWriteRoundTrip) {
  Memory M;
  M.map(0x1000, 8192);
  M.set<int64_t>(0x1F00, 0x1122334455667788LL);
  EXPECT_EQ(M.get<int64_t>(0x1F00), 0x1122334455667788LL);
  EXPECT_EQ(M.get<int32_t>(0x1F00), 0x55667788);
}

TEST(Memory, CrossPageAccessWorks) {
  Memory M;
  M.map(0x1000, 2 * PageSize);
  uint64_t Addr = 0x1000 + PageSize - 4;
  M.set<int64_t>(Addr, -1234567890123LL);
  EXPECT_EQ(M.get<int64_t>(Addr), -1234567890123LL);
}

TEST(Memory, CrossPageFaultHasNoPartialEffect) {
  Memory M;
  M.map(0x1000, PageSize); // Second page unmapped.
  uint64_t Addr = 0x1000 + PageSize - 4;
  int64_t Probe = 0x0102030405060708LL;
  AccessResult W = M.write(Addr, &Probe, 8);
  EXPECT_FALSE(W.Ok);
  // The first 4 bytes must be untouched.
  EXPECT_EQ(M.get<int32_t>(Addr), 0);
}

TEST(Memory, PermissionsEnforced) {
  Memory M;
  M.map(0x1000, PageSize, PermRead);
  int32_t V = 7;
  EXPECT_TRUE(M.read(0x1000, &V, 4).Ok);
  EXPECT_FALSE(M.write(0x1000, &V, 4).Ok);
}

TEST(Memory, FingerprintDetectsSingleByteChange) {
  Memory A;
  A.map(0x1000, PageSize);
  A.set<int32_t>(0x1100, 42);
  Memory B = A.clone();
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
  EXPECT_TRUE(A.contentsEqual(B));
  B.set<int32_t>(0x1104, 1);
  EXPECT_NE(A.fingerprint(), B.fingerprint());
  EXPECT_FALSE(A.contentsEqual(B));
}

TEST(Memory, BumpAllocatorLeavesGuardPages) {
  Memory M;
  BumpAllocator Alloc(M);
  uint64_t A = Alloc.alloc(100);
  uint64_t B = Alloc.alloc(100);
  // The gap between allocations must contain an unmapped page.
  EXPECT_GE(B - A, PageSize);
  int32_t V;
  bool FoundGuard = false;
  for (uint64_t P = A + 100; P + 4 <= B; P += PageSize)
    FoundGuard |= !M.readValue(P, V).Ok;
  EXPECT_TRUE(FoundGuard);
}

// --- RTM ---------------------------------------------------------------===//

class RtmTest : public ::testing::Test {
protected:
  void SetUp() override { M.map(0x1000, 4 * PageSize); }
  Memory M;
};

TEST_F(RtmTest, CommitMakesWritesPermanent) {
  TransactionManager Tx(M);
  Tx.begin();
  AbortReason Reason;
  int32_t V = 77;
  ASSERT_TRUE(Tx.write(0x1100, &V, 4, Reason));
  Tx.commit();
  EXPECT_EQ(M.get<int32_t>(0x1100), 77);
  EXPECT_EQ(Tx.stats().Commits, 1u);
}

TEST_F(RtmTest, AbortRollsBackAllWrites) {
  M.set<int32_t>(0x1100, 10);
  M.set<int32_t>(0x1200, 20);
  TransactionManager Tx(M);
  Tx.begin();
  AbortReason Reason;
  int32_t V = 99;
  ASSERT_TRUE(Tx.write(0x1100, &V, 4, Reason));
  ASSERT_TRUE(Tx.write(0x1200, &V, 4, Reason));
  ASSERT_TRUE(Tx.write(0x1100, &V, 4, Reason)); // Overwrite again.
  Tx.abort(AbortReason::Explicit);
  EXPECT_EQ(M.get<int32_t>(0x1100), 10);
  EXPECT_EQ(M.get<int32_t>(0x1200), 20);
  EXPECT_EQ(Tx.stats().AbortsExplicit, 1u);
}

TEST_F(RtmTest, FaultInsideTransactionAbortsAndRollsBack) {
  M.set<int32_t>(0x1100, 10);
  TransactionManager Tx(M);
  Tx.begin();
  AbortReason Reason;
  int32_t V = 99;
  ASSERT_TRUE(Tx.write(0x1100, &V, 4, Reason));
  // Unmapped address.
  EXPECT_FALSE(Tx.write(0x900000, &V, 4, Reason));
  EXPECT_EQ(Reason, AbortReason::Fault);
  EXPECT_FALSE(Tx.isActive());
  EXPECT_EQ(M.get<int32_t>(0x1100), 10);
}

TEST_F(RtmTest, WriteSetCapacityOverflowAborts) {
  TxLimits Limits;
  Limits.MaxWriteSetLines = 4;
  TransactionManager Tx(M, Limits);
  Tx.begin();
  AbortReason Reason = AbortReason::None;
  int32_t V = 1;
  bool Ok = true;
  for (int Line = 0; Line < 8 && Ok; ++Line)
    Ok = Tx.write(0x1000 + static_cast<uint64_t>(Line) * 64, &V, 4, Reason);
  EXPECT_FALSE(Ok);
  EXPECT_EQ(Reason, AbortReason::Capacity);
  EXPECT_EQ(Tx.stats().AbortsByCapacity, 1u);
  // Every tentative write rolled back.
  for (int Line = 0; Line < 4; ++Line)
    EXPECT_EQ(M.get<int32_t>(0x1000 + static_cast<uint64_t>(Line) * 64), 0);
}

TEST_F(RtmTest, ReadSetCapacityOverflowAborts) {
  TxLimits Limits;
  Limits.MaxReadSetLines = 4;
  TransactionManager Tx(M, Limits);
  Tx.begin();
  AbortReason Reason = AbortReason::None;
  int32_t V;
  bool Ok = true;
  for (int Line = 0; Line < 8 && Ok; ++Line)
    Ok = Tx.read(0x1000 + static_cast<uint64_t>(Line) * 64, &V, 4, Reason);
  EXPECT_FALSE(Ok);
  EXPECT_EQ(Reason, AbortReason::Capacity);
}

TEST_F(RtmTest, NonTransactionalPathPassesThrough) {
  TransactionManager Tx(M);
  AbortReason Reason;
  int32_t V = 5;
  EXPECT_TRUE(Tx.write(0x1100, &V, 4, Reason));
  EXPECT_EQ(M.get<int32_t>(0x1100), 5);
  EXPECT_EQ(Tx.stats().Begins, 0u);
}

/// Property: randomized transactional histories either commit (final state
/// = all writes applied) or abort (final state = initial).
TEST_F(RtmTest, RandomizedAbortCommitProperty) {
  Rng R(7);
  for (int Case = 0; Case < 100; ++Case) {
    Memory Mem2;
    Mem2.map(0x1000, 2 * PageSize);
    std::vector<int32_t> Shadow(512, 0);
    TransactionManager Tx(Mem2);
    Tx.begin();
    AbortReason Reason;
    std::vector<std::pair<size_t, int32_t>> Writes;
    int NumWrites = 1 + static_cast<int>(R.nextBelow(20));
    for (int W = 0; W < NumWrites; ++W) {
      size_t Slot = R.nextBelow(512);
      int32_t Val = static_cast<int32_t>(R.next());
      int32_t V = Val;
      ASSERT_TRUE(
          Tx.write(0x1000 + Slot * 4, &V, 4, Reason));
      Writes.push_back({Slot, Val});
    }
    if (R.nextBool(0.5)) {
      Tx.commit();
      for (auto &[Slot, Val] : Writes)
        Shadow[Slot] = Val;
    } else {
      Tx.abort(AbortReason::Explicit);
    }
    for (size_t Slot = 0; Slot < 512; ++Slot)
      ASSERT_EQ(Mem2.get<int32_t>(0x1000 + Slot * 4), Shadow[Slot]);
  }
}
