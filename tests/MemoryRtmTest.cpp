//===- tests/MemoryRtmTest.cpp - Paged memory and RTM unit tests -----------===//

#include "emu/Machine.h"
#include "faults/FaultInjector.h"
#include "isa/Program.h"
#include "memory/Memory.h"
#include "rtm/Transaction.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace flexvec;
using namespace flexvec::mem;
using namespace flexvec::rtm;

TEST(Memory, UnmappedAccessFaults) {
  Memory M;
  int32_t V;
  AccessResult R = M.readValue(0x1000, V);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.FaultAddr, 0x1000u);
}

TEST(Memory, MapReadWriteRoundTrip) {
  Memory M;
  M.map(0x1000, 8192);
  M.set<int64_t>(0x1F00, 0x1122334455667788LL);
  EXPECT_EQ(M.get<int64_t>(0x1F00), 0x1122334455667788LL);
  EXPECT_EQ(M.get<int32_t>(0x1F00), 0x55667788);
}

TEST(Memory, CrossPageAccessWorks) {
  Memory M;
  M.map(0x1000, 2 * PageSize);
  uint64_t Addr = 0x1000 + PageSize - 4;
  M.set<int64_t>(Addr, -1234567890123LL);
  EXPECT_EQ(M.get<int64_t>(Addr), -1234567890123LL);
}

TEST(Memory, CrossPageFaultHasNoPartialEffect) {
  Memory M;
  M.map(0x1000, PageSize); // Second page unmapped.
  uint64_t Addr = 0x1000 + PageSize - 4;
  int64_t Probe = 0x0102030405060708LL;
  AccessResult W = M.write(Addr, &Probe, 8);
  EXPECT_FALSE(W.Ok);
  // The first 4 bytes must be untouched.
  EXPECT_EQ(M.get<int32_t>(Addr), 0);
}

TEST(Memory, PermissionsEnforced) {
  Memory M;
  M.map(0x1000, PageSize, PermRead);
  int32_t V = 7;
  EXPECT_TRUE(M.read(0x1000, &V, 4).Ok);
  EXPECT_FALSE(M.write(0x1000, &V, 4).Ok);
}

TEST(Memory, FingerprintDetectsSingleByteChange) {
  Memory A;
  A.map(0x1000, PageSize);
  A.set<int32_t>(0x1100, 42);
  Memory B = A.clone();
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
  EXPECT_TRUE(A.contentsEqual(B));
  B.set<int32_t>(0x1104, 1);
  EXPECT_NE(A.fingerprint(), B.fingerprint());
  EXPECT_FALSE(A.contentsEqual(B));
}

TEST(Memory, BumpAllocatorLeavesGuardPages) {
  Memory M;
  BumpAllocator Alloc(M);
  uint64_t A = Alloc.alloc(100);
  uint64_t B = Alloc.alloc(100);
  // The gap between allocations must contain an unmapped page.
  EXPECT_GE(B - A, PageSize);
  int32_t V;
  bool FoundGuard = false;
  for (uint64_t P = A + 100; P + 4 <= B; P += PageSize)
    FoundGuard |= !M.readValue(P, V).Ok;
  EXPECT_TRUE(FoundGuard);
}

// --- RTM ---------------------------------------------------------------===//

class RtmTest : public ::testing::Test {
protected:
  void SetUp() override { M.map(0x1000, 4 * PageSize); }
  Memory M;
};

TEST_F(RtmTest, CommitMakesWritesPermanent) {
  TransactionManager Tx(M);
  Tx.begin();
  AbortReason Reason;
  int32_t V = 77;
  ASSERT_TRUE(Tx.write(0x1100, &V, 4, Reason));
  Tx.commit();
  EXPECT_EQ(M.get<int32_t>(0x1100), 77);
  EXPECT_EQ(Tx.stats().Commits, 1u);
}

TEST_F(RtmTest, AbortRollsBackAllWrites) {
  M.set<int32_t>(0x1100, 10);
  M.set<int32_t>(0x1200, 20);
  TransactionManager Tx(M);
  Tx.begin();
  AbortReason Reason;
  int32_t V = 99;
  ASSERT_TRUE(Tx.write(0x1100, &V, 4, Reason));
  ASSERT_TRUE(Tx.write(0x1200, &V, 4, Reason));
  ASSERT_TRUE(Tx.write(0x1100, &V, 4, Reason)); // Overwrite again.
  Tx.abort(AbortReason::Explicit);
  EXPECT_EQ(M.get<int32_t>(0x1100), 10);
  EXPECT_EQ(M.get<int32_t>(0x1200), 20);
  EXPECT_EQ(Tx.stats().AbortsExplicit, 1u);
}

TEST_F(RtmTest, FaultInsideTransactionAbortsAndRollsBack) {
  M.set<int32_t>(0x1100, 10);
  TransactionManager Tx(M);
  Tx.begin();
  AbortReason Reason;
  int32_t V = 99;
  ASSERT_TRUE(Tx.write(0x1100, &V, 4, Reason));
  // Unmapped address.
  EXPECT_FALSE(Tx.write(0x900000, &V, 4, Reason));
  EXPECT_EQ(Reason, AbortReason::Fault);
  EXPECT_FALSE(Tx.isActive());
  EXPECT_EQ(M.get<int32_t>(0x1100), 10);
}

TEST_F(RtmTest, WriteSetCapacityOverflowAborts) {
  TxLimits Limits;
  Limits.MaxWriteSetLines = 4;
  TransactionManager Tx(M, Limits);
  Tx.begin();
  AbortReason Reason = AbortReason::None;
  int32_t V = 1;
  bool Ok = true;
  for (int Line = 0; Line < 8 && Ok; ++Line)
    Ok = Tx.write(0x1000 + static_cast<uint64_t>(Line) * 64, &V, 4, Reason);
  EXPECT_FALSE(Ok);
  EXPECT_EQ(Reason, AbortReason::Capacity);
  EXPECT_EQ(Tx.stats().AbortsByCapacity, 1u);
  // Every tentative write rolled back.
  for (int Line = 0; Line < 4; ++Line)
    EXPECT_EQ(M.get<int32_t>(0x1000 + static_cast<uint64_t>(Line) * 64), 0);
}

TEST_F(RtmTest, ReadSetCapacityOverflowAborts) {
  TxLimits Limits;
  Limits.MaxReadSetLines = 4;
  TransactionManager Tx(M, Limits);
  Tx.begin();
  AbortReason Reason = AbortReason::None;
  int32_t V;
  bool Ok = true;
  for (int Line = 0; Line < 8 && Ok; ++Line)
    Ok = Tx.read(0x1000 + static_cast<uint64_t>(Line) * 64, &V, 4, Reason);
  EXPECT_FALSE(Ok);
  EXPECT_EQ(Reason, AbortReason::Capacity);
}

TEST_F(RtmTest, NonTransactionalPathPassesThrough) {
  TransactionManager Tx(M);
  AbortReason Reason;
  int32_t V = 5;
  EXPECT_TRUE(Tx.write(0x1100, &V, 4, Reason));
  EXPECT_EQ(M.get<int32_t>(0x1100), 5);
  EXPECT_EQ(Tx.stats().Begins, 0u);
}

/// Property: randomized transactional histories either commit (final state
/// = all writes applied) or abort (final state = initial).
TEST_F(RtmTest, RandomizedAbortCommitProperty) {
  Rng R(7);
  for (int Case = 0; Case < 100; ++Case) {
    Memory Mem2;
    Mem2.map(0x1000, 2 * PageSize);
    std::vector<int32_t> Shadow(512, 0);
    TransactionManager Tx(Mem2);
    Tx.begin();
    AbortReason Reason;
    std::vector<std::pair<size_t, int32_t>> Writes;
    int NumWrites = 1 + static_cast<int>(R.nextBelow(20));
    for (int W = 0; W < NumWrites; ++W) {
      size_t Slot = R.nextBelow(512);
      int32_t Val = static_cast<int32_t>(R.next());
      int32_t V = Val;
      ASSERT_TRUE(
          Tx.write(0x1000 + Slot * 4, &V, 4, Reason));
      Writes.push_back({Slot, Val});
    }
    if (R.nextBool(0.5)) {
      Tx.commit();
      for (auto &[Slot, Val] : Writes)
        Shadow[Slot] = Val;
    } else {
      Tx.abort(AbortReason::Explicit);
    }
    for (size_t Slot = 0; Slot < 512; ++Slot)
      ASSERT_EQ(Mem2.get<int32_t>(0x1000 + Slot * 4), Shadow[Slot]);
  }
}

// --- Fault injection -----------------------------------------------------===//

TEST(FaultInjector, FailNthAccessFaultsExactlyOnce) {
  Memory M;
  M.map(0x1000, PageSize);
  faults::MemFaultPlan Plan;
  Plan.FailNthAccess = 3;
  faults::FaultInjector Inj(Plan);
  Inj.arm(M);
  int32_t V;
  EXPECT_TRUE(M.readValue(0x1000, V).Ok);
  EXPECT_TRUE(M.readValue(0x1004, V).Ok);
  AccessResult Third = M.readValue(0x1008, V);
  EXPECT_FALSE(Third.Ok);
  EXPECT_EQ(Third.FaultAddr, 0x1008u);
  EXPECT_TRUE(M.readValue(0x100C, V).Ok) << "one-shot, not repeating";
  EXPECT_EQ(Inj.stats().MemFaultsInjected, 1u);
  EXPECT_EQ(Inj.stats().MemAccessesSeen, 4u);
}

TEST(FaultInjector, RepeatNthFaultsPeriodically) {
  Memory M;
  M.map(0x1000, PageSize);
  faults::MemFaultPlan Plan;
  Plan.FailNthAccess = 2;
  Plan.RepeatNth = true;
  faults::FaultInjector Inj(Plan);
  Inj.arm(M);
  int32_t V;
  for (int I = 0; I < 3; ++I) {
    EXPECT_TRUE(M.readValue(0x1000, V).Ok);
    EXPECT_FALSE(M.readValue(0x1000, V).Ok);
  }
  EXPECT_EQ(Inj.stats().MemFaultsInjected, 3u);
}

TEST(FaultInjector, RangeFaultsAreAddressDeterministic) {
  // A line's faultiness depends only on (seed, line), never on access
  // order or count — the property the differential harness relies on.
  Memory M;
  M.map(0x10000, 0x4000);
  faults::MemFaultPlan Plan;
  Plan.Seed = 99;
  Plan.Ranges.push_back(
      {0x10000, 0x14000, 0.5, faults::FaultDuration::Persistent});

  auto sweep = [&](bool Descending) {
    faults::FaultInjector Inj(Plan);
    Inj.arm(M);
    std::set<uint64_t> Faulty;
    for (int I = 0; I < 256; ++I) {
      int Line = Descending ? 255 - I : I;
      uint64_t Addr = 0x10000 + static_cast<uint64_t>(Line) * 64;
      int32_t V;
      if (!M.readValue(Addr, V).Ok)
        Faulty.insert(Addr);
      // Touch it again: persistent faults must not depend on touch count.
      EXPECT_EQ(M.readValue(Addr, V).Ok, !Faulty.count(Addr));
    }
    Inj.disarm();
    return Faulty;
  };

  std::set<uint64_t> Ascending = sweep(false);
  std::set<uint64_t> Reversed = sweep(true);
  EXPECT_EQ(Ascending, Reversed);
  EXPECT_GT(Ascending.size(), 0u);
  EXPECT_LT(Ascending.size(), 256u);
}

TEST(FaultInjector, DifferentSeedsChangeTheFaultySet) {
  Memory M;
  M.map(0x10000, 0x4000);
  auto faultySet = [&](uint64_t Seed) {
    faults::MemFaultPlan Plan;
    Plan.Seed = Seed;
    Plan.Ranges.push_back(
        {0x10000, 0x14000, 0.5, faults::FaultDuration::Persistent});
    faults::FaultInjector Inj(Plan);
    Inj.arm(M);
    std::set<uint64_t> Faulty;
    int32_t V;
    for (uint64_t Addr = 0x10000; Addr < 0x14000; Addr += 64)
      if (!M.readValue(Addr, V).Ok)
        Faulty.insert(Addr);
    Inj.disarm();
    return Faulty;
  };
  EXPECT_NE(faultySet(1), faultySet(2));
}

TEST(FaultInjector, TransientFaultHealsAfterFiring) {
  Memory M;
  M.map(0x1000, PageSize);
  M.set<int32_t>(0x1000, 31);
  faults::MemFaultPlan Plan;
  Plan.Ranges.push_back(
      {0x1000, 0x1040, 1.0, faults::FaultDuration::Transient});
  faults::FaultInjector Inj(Plan);
  Inj.arm(M);
  int32_t V = 0;
  EXPECT_FALSE(M.readValue(0x1000, V).Ok) << "first touch faults";
  EXPECT_TRUE(M.readValue(0x1000, V).Ok) << "the line has healed";
  EXPECT_EQ(V, 31);
  EXPECT_EQ(Inj.stats().MemFaultsInjected, 1u);
  // reset() re-arms the transient state for a replay.
  Inj.reset();
  EXPECT_FALSE(M.readValue(0x1000, V).Ok);
}

TEST(FaultInjector, DebugPeekPokeBypassInjection) {
  Memory M;
  M.map(0x1000, PageSize);
  faults::MemFaultPlan Plan;
  Plan.Ranges.push_back(
      {0x1000, 0x1000 + PageSize, 1.0, faults::FaultDuration::Persistent});
  faults::FaultInjector Inj(Plan);
  Inj.arm(M);
  int32_t V = 5;
  EXPECT_FALSE(M.write(0x1000, &V, 4).Ok);
  // get/set route through peek/poke: harness verification and image
  // construction must be unaffected by an armed injector.
  M.set<int32_t>(0x1000, 123);
  EXPECT_EQ(M.get<int32_t>(0x1000), 123);
  EXPECT_FALSE(M.read(0x1000, &V, 4).Ok);
  Inj.disarm();
  EXPECT_TRUE(M.read(0x1000, &V, 4).Ok);
  EXPECT_EQ(V, 123);
}

TEST(FaultInjector, ParseRangeFaultSpecs) {
  faults::RangeFault R;
  std::string Err;
  ASSERT_TRUE(faults::parseRangeFault("0x1000:0x2000:0.25:transient", R, Err))
      << Err;
  EXPECT_EQ(R.Lo, 0x1000u);
  EXPECT_EQ(R.Hi, 0x2000u);
  EXPECT_DOUBLE_EQ(R.Prob, 0.25);
  EXPECT_EQ(R.Duration, faults::FaultDuration::Transient);
  ASSERT_TRUE(faults::parseRangeFault("4096:8192:1", R, Err)) << Err;
  EXPECT_EQ(R.Duration, faults::FaultDuration::Persistent);
  EXPECT_FALSE(faults::parseRangeFault("0x2000:0x1000:0.5", R, Err));
  EXPECT_FALSE(faults::parseRangeFault("0x1000:0x2000", R, Err));
  EXPECT_FALSE(faults::parseRangeFault("0x1000:0x2000:1.5", R, Err));
  EXPECT_FALSE(faults::parseRangeFault("0x1000:0x2000:0.5:sometimes", R, Err));
}

// --- RTM rollback exactness under injected aborts ------------------------===//

TEST(RtmFault, InjectedAbortRollsBackBitForBit) {
  Memory M;
  M.map(0x1000, 4 * PageSize);
  for (int I = 0; I < 64; ++I)
    M.set<int64_t>(0x1000 + static_cast<uint64_t>(I) * 8, I * 1111);
  Memory Pristine = M.clone();

  emu::Machine Mach(M);
  faults::TxFaultPlan TxPlan;
  TxPlan.AbortNthOp = 4; // Three writes land, the fourth aborts.
  TxPlan.Reason = rtm::AbortReason::Capacity;
  faults::FaultInjector Inj(faults::MemFaultPlan(), TxPlan);
  Inj.arm(M, &Mach.tx());

  using namespace flexvec::isa;
  ProgramBuilder B;
  auto Abort = B.createLabel();
  auto Done = B.createLabel();
  // Pre-transaction architectural state the abort must restore exactly.
  B.movImm(Reg::scalar(1), 0x1000);
  B.movImm(Reg::scalar(2), 1234);
  B.kset(Reg::mask(1), 0x00F0);
  B.movImm(Reg::scalar(9), 77);
  B.vindex(Reg::vector(1), ElemType::I32, Reg::scalar(9)); // 77..92
  B.xbegin(Abort);
  // Clobber registers, masks, vectors; write the same line twice and a
  // second line so the undo log must replay in reverse order.
  B.movImm(Reg::scalar(2), -1);
  B.kset(Reg::mask(1), 0xFFFF);
  B.movImm(Reg::scalar(10), 500);
  B.vindex(Reg::vector(1), ElemType::I32, Reg::scalar(10));
  B.movImm(Reg::scalar(3), 888);
  B.store(ElemType::I64, Reg::scalar(1), Reg::none(), 1, 0, Reg::scalar(3));
  B.store(ElemType::I64, Reg::scalar(1), Reg::none(), 1, 8, Reg::scalar(3));
  B.store(ElemType::I64, Reg::scalar(1), Reg::none(), 1, 0, Reg::scalar(2));
  B.store(ElemType::I64, Reg::scalar(1), Reg::none(), 1, 128, Reg::scalar(3));
  B.xend();
  B.jmp(Done);
  B.bind(Abort);
  B.movImm(Reg::scalar(8), 1);
  B.bind(Done);
  B.halt();

  emu::ExecResult R = Mach.run(B.finalize());
  ASSERT_EQ(R.Reason, emu::StopReason::Halted) << R.describe();
  EXPECT_EQ(Mach.getScalar(8), 1) << "abort handler ran";
  // Registers, masks, and vectors restored bit-for-bit.
  EXPECT_EQ(Mach.getScalar(2), 1234);
  EXPECT_EQ(Mach.getMask(1), 0x00F0u);
  for (unsigned L = 0; L < 16; ++L)
    EXPECT_EQ(Mach.getVector(1).laneInt(ElemType::I32, L),
              77 + static_cast<int>(L));
  // Memory restored bit-for-bit, including the doubly-written line.
  EXPECT_EQ(M.fingerprint(), Pristine.fingerprint());
  EXPECT_TRUE(M.contentsEqual(Pristine));
  EXPECT_EQ(Mach.txStats().AbortsByCapacity, 1u);
  EXPECT_EQ(Mach.txStats().InjectedAborts, 1u);
  EXPECT_EQ(R.Stats.RtmFallbacks, 1u);
  EXPECT_EQ(R.Stats.RtmRetries, 0u);
}
