//===- tests/SimTest.cpp - OOO timing model sanity ------------------------===//
//
// The absolute cycle counts of the model are only meaningful as ratios,
// but several structural properties must hold: dependent chains cost
// latency, independent work overlaps, cache levels order correctly,
// mispredicts cost more than predicted branches, and the Table 1 FlexVec
// instruction latencies are observable (the paper's back-to-back
// micro-kernel methodology).
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "emu/Machine.h"
#include "sim/OooCore.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::isa;
using namespace flexvec::sim;

namespace {

/// Runs \p P through the emulator with an OooCore sink; returns stats.
SimStats timeProgram(const Program &P, mem::Memory &M,
                     const CoreConfig &Cfg = CoreConfig()) {
  OooCore Core(Cfg);
  emu::Machine Mach(M);
  emu::ExecResult R = Mach.run(P, emu::RunLimits(), &Core);
  EXPECT_EQ(R.Reason, emu::StopReason::Halted);
  return Core.stats();
}

/// Emits N back-to-back *dependent* instances of a mask op and returns the
/// per-instance cycle cost (latency measurement, as in Section 5's
/// VPCONFLICTM methodology).
double dependentChainCost(Opcode Op, int N) {
  mem::Memory M;
  ProgramBuilder B;
  B.kset(Reg::mask(1), 0xFFFF);
  B.kset(Reg::mask(2), 0x0100);
  for (int I = 0; I < N; ++I) {
    // Chain k3 -> k3.
    if (I == 0)
      B.kset(Reg::mask(3), 0x0010);
    Instruction Ins;
    Ins.Op = Op;
    Ins.Type = ElemType::I32;
    Ins.Dst = Reg::mask(3);
    Ins.Src1 = Reg::mask(3);
    Ins.MaskReg = Reg::mask(1);
    B.emit(Ins);
  }
  B.halt();
  SimStats S = timeProgram(B.finalize(), M);
  return static_cast<double>(S.Cycles) / N;
}

} // namespace

TEST(Sim, DependentChainPaysFullLatency) {
  // 1000 dependent scalar multiplies (latency 3) ≈ 3000 cycles.
  mem::Memory M;
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 3);
  for (int I = 0; I < 1000; ++I)
    B.binOp(Opcode::Mul, Reg::scalar(1), Reg::scalar(1), Reg::scalar(1));
  B.halt();
  SimStats S = timeProgram(B.finalize(), M);
  EXPECT_GE(S.Cycles, 2900u);
  EXPECT_LE(S.Cycles, 3300u);
}

TEST(Sim, IndependentWorkOverlaps) {
  // 1000 independent multiplies: throughput-bound, far below 3000 cycles.
  mem::Memory M;
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 3);
  for (int I = 0; I < 1000; ++I)
    B.binOp(Opcode::Mul, Reg::scalar(2), Reg::scalar(1), Reg::scalar(1));
  B.halt();
  SimStats S = timeProgram(B.finalize(), M);
  EXPECT_LE(S.Cycles, 1500u);
}

TEST(Sim, FlexVecInstructionLatenciesMatchTable1) {
  // Dependent chains expose the latency: KFTM ≈ 2, VPCONFLICTM ≈ 20.
  double Kftm = dependentChainCost(Opcode::KFtmExc, 500);
  EXPECT_NEAR(Kftm, 2.0, 0.5);
  double KftmInc = dependentChainCost(Opcode::KFtmInc, 500);
  EXPECT_NEAR(KftmInc, 2.0, 0.5);

  // VPSLCTLAST chained through its vector operand.
  mem::Memory M;
  ProgramBuilder B;
  B.kset(Reg::mask(1), 0x00FF);
  for (int I = 0; I < 500; ++I)
    B.vslctlast(Reg::vector(1), ElemType::I32, Reg::mask(1), Reg::vector(1));
  B.halt();
  double Slct = static_cast<double>(timeProgram(B.finalize(), M).Cycles) / 500;
  EXPECT_NEAR(Slct, 3.0, 0.5);

  // VPCONFLICTM chained dst->src via an intervening mask-to-vector dep is
  // awkward; chain through the write-enable instead is not dependent, so
  // chain v1 <- blend(conflict result) is overkill: measure via dst-as-src
  // using VConflictM's mask output feeding KFTM feeding the next enable.
  ProgramBuilder B2;
  mem::Memory M2;
  B2.kset(Reg::mask(1), 0xFFFF);
  for (int I = 0; I < 200; ++I) {
    B2.vconflictm(Reg::mask(2), ElemType::I32, Reg::mask(1), Reg::vector(1),
                  Reg::vector(2));
    B2.kftmExc(Reg::mask(1), ElemType::I32, Reg::mask(2), Reg::mask(2));
  }
  B2.halt();
  double Pair = static_cast<double>(timeProgram(B2.finalize(), M2).Cycles) /
                200;
  // 20 (conflict) + 2 (kftm) per round trip.
  EXPECT_NEAR(Pair, 22.0, 2.0);
}

TEST(Sim, CacheHierarchyLatenciesOrder) {
  // Pointer-chase (dependent loads) over working sets sized for each
  // level; cycles per load must increase L1 -> L2 -> L3 -> memory.
  auto chase = [](uint64_t Elems) {
    mem::Memory M;
    uint64_t Base = 0x100000;
    M.map(Base, Elems * 8 + 64);
    // Permutation walk with a stride large enough to dodge the streaming
    // prefetcher; iterate the chain many times so cold misses wash out.
    uint64_t Step = 97;
    for (uint64_t I = 0; I < Elems; ++I)
      M.set<int64_t>(Base + I * 8,
                     static_cast<int64_t>(((I + Step) % Elems) * 8));
    int64_t N = static_cast<int64_t>(Elems) * 4;
    ProgramBuilder B;
    auto Header = B.createLabel();
    auto Exit = B.createLabel();
    B.movImm(Reg::scalar(1), static_cast<int64_t>(Base));
    B.movImm(Reg::scalar(2), 0); // Chain cursor.
    B.movImm(Reg::scalar(5), 0); // Counter.
    B.bind(Header);
    B.cmpImm(Reg::scalar(6), CmpKind::LT, Reg::scalar(5), N);
    B.brZero(Reg::scalar(6), Exit);
    B.load(Reg::scalar(2), ElemType::I64, Reg::scalar(1), Reg::scalar(2), 1,
           0);
    B.binOpImm(Opcode::AddImm, Reg::scalar(5), Reg::scalar(5), 1);
    B.jmp(Header);
    B.bind(Exit);
    B.halt();
    SimStats S = timeProgram(B.finalize(), M);
    return static_cast<double>(S.Cycles) / static_cast<double>(N);
  };
  double L1 = chase(512);        // 4 KiB.
  double L2 = chase(8 * 1024);   // 64 KiB: fits L2, not L1.
  double L3 = chase(96 * 1024);  // 768 KiB: fits L3, not L2.
  EXPECT_LT(L1 + 1.0, L2);
  EXPECT_LT(L2 + 2.0, L3);
  // ~5 cycles of load-to-use chain plus amortized cold misses.
  EXPECT_GT(L1, 4.5);
  EXPECT_LT(L1, 11.0);
}

TEST(Sim, MispredictsCostCycles) {
  // A data-dependent unpredictable branch vs an always-taken one.
  auto branchy = [](bool Random) {
    mem::Memory M;
    M.map(0x1000, 64 * 1024);
    Rng R(5);
    for (int I = 0; I < 8192; ++I)
      M.set<int32_t>(0x1000 + static_cast<uint64_t>(I) * 4,
                     Random ? static_cast<int32_t>(R.nextBelow(2)) : 1);
    ProgramBuilder B;
    auto Header = B.createLabel();
    auto Skip = B.createLabel();
    auto Exit = B.createLabel();
    B.movImm(Reg::scalar(1), 0);
    B.movImm(Reg::scalar(4), 0x1000);
    B.bind(Header);
    B.cmpImm(Reg::scalar(2), CmpKind::LT, Reg::scalar(1), 8192);
    B.brZero(Reg::scalar(2), Exit);
    B.load(Reg::scalar(3), ElemType::I32, Reg::scalar(4), Reg::scalar(1), 4,
           0);
    B.brZero(Reg::scalar(3), Skip);
    B.binOpImm(Opcode::AddImm, Reg::scalar(5), Reg::scalar(5), 1);
    B.bind(Skip);
    B.binOpImm(Opcode::AddImm, Reg::scalar(1), Reg::scalar(1), 1);
    B.jmp(Header);
    B.bind(Exit);
    B.halt();
    return B.finalize();
  };
  mem::Memory M1, M2;
  M1.map(0x1000, 64 * 1024);
  M2.map(0x1000, 64 * 1024);
  Rng R(5);
  for (int I = 0; I < 8192; ++I) {
    M1.set<int32_t>(0x1000 + static_cast<uint64_t>(I) * 4,
                    static_cast<int32_t>(R.nextBelow(2)));
    M2.set<int32_t>(0x1000 + static_cast<uint64_t>(I) * 4, 1);
  }
  SimStats SRand = timeProgram(branchy(true), M1);
  SimStats SPred = timeProgram(branchy(false), M2);
  EXPECT_GT(SRand.Mispredicts, 2000u);
  EXPECT_LT(SPred.Mispredicts, 200u);
  EXPECT_GT(SRand.Cycles, SPred.Cycles + 10000u);
}

TEST(Sim, StreamingPrefetcherHidesSequentialMisses) {
  auto stream = [](bool Prefetch) {
    mem::Memory M;
    uint64_t Base = 0x100000;
    uint64_t Elems = 64 * 1024; // 256 KiB: misses L1/L2 without prefetch.
    M.map(Base, Elems * 4);
    ProgramBuilder B;
    auto Header = B.createLabel();
    auto Exit = B.createLabel();
    B.movImm(Reg::scalar(1), 0);
    B.movImm(Reg::scalar(4), static_cast<int64_t>(Base));
    B.bind(Header);
    B.cmpImm(Reg::scalar(2), CmpKind::LT, Reg::scalar(1),
             static_cast<int64_t>(Elems));
    B.brZero(Reg::scalar(2), Exit);
    B.load(Reg::scalar(3), ElemType::I32, Reg::scalar(4), Reg::scalar(1), 4,
           0);
    B.binOpImm(Opcode::AddImm, Reg::scalar(1), Reg::scalar(1), 1);
    B.jmp(Header);
    B.bind(Exit);
    B.halt();
    CoreConfig Cfg;
    Cfg.EnablePrefetcher = Prefetch;
    OooCore Core(Cfg);
    emu::Machine Mach(M);
    Mach.run(B.finalize(), emu::RunLimits(), &Core);
    return Core.stats();
  };
  SimStats WithPf = stream(true);
  SimStats NoPf = stream(false);
  EXPECT_LT(WithPf.Mem.MemAccesses, NoPf.Mem.MemAccesses / 4);
  EXPECT_LT(WithPf.Cycles, NoPf.Cycles);
}

TEST(Sim, GatherExpandsToLaneUops) {
  mem::Memory M;
  M.map(0x1000, 4096);
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 0x1000);
  B.movImm(Reg::scalar(2), 0);
  B.vindex(Reg::vector(1), ElemType::I32, Reg::scalar(2));
  B.kset(Reg::mask(1), 0xFFFF);
  B.vgather(Reg::vector(2), ElemType::I32, Reg::mask(1), Reg::scalar(1),
            Reg::vector(1), 4, 0);
  B.halt();
  SimStats S = timeProgram(B.finalize(), M);
  // 16 active lanes -> at least 16 memory uops + AGU + the setup.
  EXPECT_GE(S.Uops, 20u);
}

TEST(Sim, Table1ConfigIsDefault) {
  CoreConfig Cfg;
  EXPECT_EQ(Cfg.FetchWidth, 5u);
  EXPECT_EQ(Cfg.IssueWidth, 8u);
  EXPECT_EQ(Cfg.CommitWidth, 5u);
  EXPECT_EQ(Cfg.RsEntries, 97u);
  EXPECT_EQ(Cfg.RobEntries, 224u);
  EXPECT_EQ(Cfg.LoadQueueEntries, 80u);
  EXPECT_EQ(Cfg.StoreQueueEntries, 56u);
  EXPECT_EQ(Cfg.L1D.SizeBytes, 32u * 1024);
  EXPECT_EQ(Cfg.L2.SizeBytes, 256u * 1024);
  EXPECT_EQ(Cfg.L3.SizeBytes, 8u * 1024 * 1024);
  EXPECT_EQ(Cfg.MemoryLatency, 200u);
  EXPECT_EQ(Cfg.LoadPorts, 2u);
  EXPECT_EQ(Cfg.StorePorts, 1u);
}
