   0:  movimm r24, 0    ; i = 0
   1:  movimm r31, 0
   2:  vbroadcasti.i32 v16, 255    ; constant pool
   3:  cmp.lt r25, r24, r2
   4:  brz r25, @30
   5:  vindex.i32 v0, r24    ; v_i = i + lane
   6:  vbroadcast.i32 v17, r2
   7:  vcmp.lt.i32 k1, v0, v17    ; k_loop = v_i < bound
   8:  vload.i32 v17, {k1}, [r14 + r24*4]
   9:  vblend.i32 v3, {k1}, v17, v3
  10:  vload.i32 v18, {k1}, [r15 + r24*4]
  11:  vand.i32 v18, v18, v16
  12:  vpgather.i32 v17, {k1}, [r17 + v18*4]
  13:  vload.i32 v18, {k1}, [r16 + r24*4]
  14:  vadd.i32 v17, v17, v18
  15:  vblend.i32 v4, {k1}, v17, v4
  16:  kmov k4, k1    ; k_todo = unprocessed lanes
  17:  kset k5, 0
  18:  vpconflictm.i32 k7, {k4}, v3, v3    ; detect read-after-write lanes
  19:  kor k5, k5, k7
  20:  kftm.exc.i32 k6, {k4}, k5    ; k_safe = lanes safe to execute
  21:  vpgather.i32 v17, {k6}, [r18 + v3*4]
  22:  vmin.i32 v17, v17, v4
  23:  vpscatter.i32 {k6}, [r18 + v3*4], v17    ; S3: d[j] = min(d[j], t1)
  24:  kandn k4, k6, k4    ; k_todo &= ~k_safe
  25:  kand k5, k5, k4
  26:  ktest r25, k5
  27:  brnz r25, @20    ; VPL: serialize dependent lanes
  28:  addi r24, r24, 16    ; i += VL
  29:  jmp @3
  30:  jmp @47
  31:  cmp.lt r25, r24, r2    ; scalar loop header
  32:  brz r25, @47
  33:  load.i32 r25, [r14 + r24*4]
  34:  mov r3, r25    ; S1: j = idxdst[i]
  35:  load.i32 r25, [r15 + r24*4]
  36:  movimm r26, 255
  37:  and r25, r25, r26
  38:  load.i32 r25, [r17 + r25*4]
  39:  load.i32 r26, [r16 + r24*4]
  40:  add r25, r25, r26
  41:  mov r4, r25    ; S2: t1 = (pot[(idxsrc[i] & 255)] + w[i])
  42:  load.i32 r25, [r18 + r3*4]
  43:  min r25, r25, r4
  44:  store.i32 [r18 + r3*4], r25    ; S3: d[j] = min(d[j], t1)
  45:  addi r24, r24, 1
  46:  jmp @31
  47:  halt
