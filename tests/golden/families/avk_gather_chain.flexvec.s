   0:  movimm r24, 0    ; i = 0
   1:  movimm r31, 0
   2:  vbroadcasti.i32 v16, 255    ; constant pool
   3:  cmp.lt r25, r24, r2
   4:  brz r25, @19
   5:  vindex.i32 v0, r24    ; v_i = i + lane
   6:  vbroadcast.i32 v17, r2
   7:  vcmp.lt.i32 k1, v0, v17    ; k_loop = v_i < bound
   8:  vload.i32 v18, {k1}, [r14 + r24*4]
   9:  vand.i32 v18, v18, v16
  10:  vpgather.i32 v17, {k1}, [r15 + v18*4]
  11:  vblend.i32 v3, {k1}, v17, v3
  12:  vand.i32 v18, v3, v16
  13:  vpgather.i32 v17, {k1}, [r15 + v18*4]
  14:  vblend.i32 v4, {k1}, v17, v4
  15:  vadd.i32 v17, v3, v4
  16:  vstore.i32 {k1}, [r16 + r24*4], v17    ; S3: out[i] = (t1 + t2)
  17:  addi r24, r24, 16    ; i += VL
  18:  jmp @3
  19:  jmp @35
  20:  cmp.lt r25, r24, r2    ; scalar loop header
  21:  brz r25, @35
  22:  load.i32 r25, [r14 + r24*4]
  23:  movimm r26, 255
  24:  and r25, r25, r26
  25:  load.i32 r25, [r15 + r25*4]
  26:  mov r3, r25    ; S1: t1 = lut[(idx[i] & 255)]
  27:  movimm r25, 255
  28:  and r25, r3, r25
  29:  load.i32 r25, [r15 + r25*4]
  30:  mov r4, r25    ; S2: t2 = lut[(t1 & 255)]
  31:  add r25, r3, r4
  32:  store.i32 [r16 + r24*4], r25    ; S3: out[i] = (t1 + t2)
  33:  addi r24, r24, 1
  34:  jmp @20
  35:  halt
