   0:  movimm r24, 0    ; i = 0
   1:  movimm r31, 0
   2:  vbroadcasti.i32 v16, 1    ; constant pool
   3:  vbroadcasti.i32 v17, 2    ; constant pool
   4:  cmp.lt r25, r24, r2
   5:  brz r25, @18
   6:  vindex.i32 v0, r24    ; v_i = i + lane
   7:  vbroadcast.i32 v18, r2
   8:  vcmp.lt.i32 k1, v0, v18    ; k_loop = v_i < bound
   9:  vload.i32 v18, {k1}, [r14 + r24*4]
  10:  vload.i32 v19, {k1}, [r14 + r24*4 + 4]
  11:  vadd.i32 v18, v18, v19
  12:  vload.i32 v19, {k1}, [r14 + r24*4 + 8]
  13:  vadd.i32 v18, v18, v19
  14:  vblend.i32 v3, {k1}, v18, v3
  15:  vstore.i32 {k1}, [r15 + r24*4], v3    ; S2: b[i] = t1
  16:  addi r24, r24, 16    ; i += VL
  17:  jmp @4
  18:  jmp @34
  19:  cmp.lt r25, r24, r2    ; scalar loop header
  20:  brz r25, @34
  21:  load.i32 r25, [r14 + r24*4]
  22:  movimm r26, 1
  23:  add r26, r24, r26
  24:  load.i32 r26, [r14 + r26*4]
  25:  add r25, r25, r26
  26:  movimm r26, 2
  27:  add r26, r24, r26
  28:  load.i32 r26, [r14 + r26*4]
  29:  add r25, r25, r26
  30:  mov r3, r25    ; S1: t1 = ((a[i] + a[(i + 1)]) + a[(i + 2)])
  31:  store.i32 [r15 + r24*4], r3    ; S2: b[i] = t1
  32:  addi r24, r24, 1
  33:  jmp @19
  34:  halt
