   0:  movimm r24, 0    ; i = 0
   1:  movimm r31, 0
   2:  vbroadcast.i32 v3, r3    ; broadcast invariant alpha
   3:  cmp.lt r25, r24, r2
   4:  brz r25, @15
   5:  vindex.i32 v0, r24    ; v_i = i + lane
   6:  vbroadcast.i32 v16, r2
   7:  vcmp.lt.i32 k1, v0, v16    ; k_loop = v_i < bound
   8:  vload.i32 v16, {k1}, [r15 + r24*4]
   9:  vload.i32 v17, {k1}, [r14 + r24*4]
  10:  vmul.i32 v17, v3, v17
  11:  vadd.i32 v16, v16, v17
  12:  vstore.i32 {k1}, [r15 + r24*4], v16    ; S1: y[i] = (y[i] + (alpha * x[i]))
  13:  addi r24, r24, 16    ; i += VL
  14:  jmp @3
  15:  jmp @25
  16:  cmp.lt r25, r24, r2    ; scalar loop header
  17:  brz r25, @25
  18:  load.i32 r25, [r15 + r24*4]
  19:  load.i32 r26, [r14 + r24*4]
  20:  mul r26, r3, r26
  21:  add r25, r25, r26
  22:  store.i32 [r15 + r24*4], r25    ; S1: y[i] = (y[i] + (alpha * x[i]))
  23:  addi r24, r24, 1
  24:  jmp @16
  25:  halt
