   0:  movimm r24, 0    ; i = 0
   1:  movimm r31, 0
   2:  cmp.lt r25, r24, r2
   3:  brz r25, @24
   4:  vindex.i32 v0, r24    ; v_i = i + lane
   5:  vbroadcast.i32 v16, r2
   6:  vcmp.lt.i32 k1, v0, v16    ; k_loop = v_i < bound
   7:  vload.i32 v16, {k1}, [r14 + r24*4]
   8:  vblend.i32 v3, {k1}, v16, v3
   9:  kmov k4, k1    ; k_todo = unprocessed lanes
  10:  kset k5, 0
  11:  vpconflictm.i32 k7, {k4}, v3, v3    ; detect read-after-write lanes
  12:  kor k5, k5, k7
  13:  kftm.exc.i32 k6, {k4}, k5    ; k_safe = lanes safe to execute
  14:  vpgather.i32 v16, {k6}, [r16 + v3*4]
  15:  vload.i32 v17, {k6}, [r15 + r24*4]
  16:  vmax.i32 v16, v16, v17
  17:  vpscatter.i32 {k6}, [r16 + v3*4], v16    ; S2: hist[j] = max(hist[j], w[i])
  18:  kandn k4, k6, k4    ; k_todo &= ~k_safe
  19:  kand k5, k5, k4
  20:  ktest r25, k5
  21:  brnz r25, @13    ; VPL: serialize dependent lanes
  22:  addi r24, r24, 16    ; i += VL
  23:  jmp @2
  24:  jmp @35
  25:  cmp.lt r25, r24, r2    ; scalar loop header
  26:  brz r25, @35
  27:  load.i32 r25, [r14 + r24*4]
  28:  mov r3, r25    ; S1: j = idx[i]
  29:  load.i32 r25, [r16 + r3*4]
  30:  load.i32 r26, [r15 + r24*4]
  31:  max r25, r25, r26
  32:  store.i32 [r16 + r3*4], r25    ; S2: hist[j] = max(hist[j], w[i])
  33:  addi r24, r24, 1
  34:  jmp @25
  35:  halt
