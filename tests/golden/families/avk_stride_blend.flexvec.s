   0:  movimm r24, 0    ; i = 0
   1:  movimm r31, 0
   2:  vbroadcasti.i32 v16, 2    ; constant pool
   3:  vbroadcasti.i32 v17, 255    ; constant pool
   4:  vbroadcasti.i32 v18, 1    ; constant pool
   5:  cmp.lt r25, r24, r2
   6:  brz r25, @22
   7:  vindex.i32 v0, r24    ; v_i = i + lane
   8:  vbroadcast.i32 v19, r2
   9:  vcmp.lt.i32 k1, v0, v19    ; k_loop = v_i < bound
  10:  vmul.i32 v20, v0, v16
  11:  vand.i32 v20, v20, v17
  12:  vpgather.i32 v19, {k1}, [r14 + v20*4]
  13:  vmul.i32 v21, v0, v16
  14:  vadd.i32 v21, v21, v18
  15:  vand.i32 v21, v21, v17
  16:  vpgather.i32 v20, {k1}, [r14 + v21*4]
  17:  vadd.i32 v19, v19, v20
  18:  vblend.i32 v3, {k1}, v19, v3
  19:  vstore.i32 {k1}, [r15 + r24*4], v3    ; S2: out[i] = t1
  20:  addi r24, r24, 16    ; i += VL
  21:  jmp @5
  22:  jmp @42
  23:  cmp.lt r25, r24, r2    ; scalar loop header
  24:  brz r25, @42
  25:  movimm r25, 2
  26:  mul r25, r24, r25
  27:  movimm r26, 255
  28:  and r25, r25, r26
  29:  load.i32 r25, [r14 + r25*4]
  30:  movimm r26, 2
  31:  mul r26, r24, r26
  32:  movimm r27, 1
  33:  add r26, r26, r27
  34:  movimm r27, 255
  35:  and r26, r26, r27
  36:  load.i32 r26, [r14 + r26*4]
  37:  add r25, r25, r26
  38:  mov r3, r25    ; S1: t1 = (s0[((i * 2) & 255)] + s0[(((i * 2) + 1) & 255)])
  39:  store.i32 [r15 + r24*4], r3    ; S2: out[i] = t1
  40:  addi r24, r24, 1
  41:  jmp @23
  42:  halt
