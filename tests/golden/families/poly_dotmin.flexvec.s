   0:  movimm r24, 0    ; i = 0
   1:  movimm r31, 0
   2:  cmp.lt r25, r24, r2
   3:  brz r25, @35
   4:  vindex.i32 v0, r24    ; v_i = i + lane
   5:  vbroadcast.i32 v16, r2
   6:  vcmp.lt.i32 k1, v0, v16    ; k_loop = v_i < bound
   7:  vbroadcast.i32 v3, r3    ; re-broadcast best
   8:  vbroadcast.i32 v4, r4    ; re-broadcast pay
   9:  vload.i32 v16, {k1}, [r14 + r24*4]
  10:  vload.i32 v17, {k1}, [r15 + r24*4]
  11:  vmul.i32 v16, v16, v17
  12:  vblend.i32 v5, {k1}, v16, v5
  13:  kmov k4, k1    ; k_todo = unprocessed lanes
  14:  kset k5, 0    ; VPL: clear updating-lane mask
  15:  vcmp.lt.i32 k2, {k4}, v5, v3
  16:  vblend.i32 v16, {k0}, v5, v5    ; S3: best = t1 (captured update value)
  17:  kor k5, k5, k2    ; k_stop |= updating lanes
  18:  vblend.i32 v17, {k0}, v0, v0    ; S4: pay = i (captured update value)
  19:  kor k5, k5, k2    ; k_stop |= updating lanes
  20:  kftm.inc.i32 k6, {k4}, k5    ; k_safe = lanes through first update
  21:  ktest r25, k5
  22:  brz r25, @28    ; no update fired
  23:  kand k3, k5, k6    ; commit lane (first updater)
  24:  kandn k7, k6, k4
  25:  kor k7, k7, k3    ; k_rem = lanes at/after the update
  26:  vpslctlast.i32 v3, {k3}, v16    ; best <- committed update
  27:  vpslctlast.i32 v4, {k3}, v17    ; pay <- committed update
  28:  kandn k4, k6, k4    ; k_todo &= ~k_safe
  29:  ktest r25, k4
  30:  brnz r25, @14    ; VPL: re-execute remaining lanes
  31:  vextractlast.i32 r3, {k0}, v3    ; sync best to scalar
  32:  vextractlast.i32 r4, {k0}, v4    ; sync pay to scalar
  33:  addi r24, r24, 16    ; i += VL
  34:  jmp @2
  35:  jmp @48
  36:  cmp.lt r25, r24, r2    ; scalar loop header
  37:  brz r25, @48
  38:  load.i32 r25, [r14 + r24*4]
  39:  load.i32 r26, [r15 + r24*4]
  40:  mul r25, r25, r26
  41:  mov r5, r25    ; S1: t1 = (x[i] * y[i])
  42:  cmp.lt r25, r5, r3
  43:  brz r25, @46    ; S2: if (t1 < best)
  44:  mov r3, r5    ; S3: best = t1
  45:  mov r4, r24    ; S4: pay = i
  46:  addi r24, r24, 1
  47:  jmp @36
  48:  halt
