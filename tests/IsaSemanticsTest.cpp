//===- tests/IsaSemanticsTest.cpp - FlexVec instruction semantics ----------===//
//
// Encodes the paper's worked lane-by-lane examples as unit tests:
//   * VPGATHERFF (Section 3.3.1)     - first-faulting gather
//   * KFTM.EXC / KFTM.INC (Section 3.4) - partial mask generation
//   * VPSLCTLAST (Section 3.5)       - select-last broadcast
//   * VPCONFLICTM (Section 3.6)      - conflict detection, both examples
//
// The paper lays vector elements out left to right; lane 0 is the leftmost
// element and the least significant mask bit here.
//
//===----------------------------------------------------------------------===//

#include "emu/Machine.h"
#include "isa/Program.h"
#include "support/Bits.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::isa;
using namespace flexvec::emu;

namespace {

/// Builds a mask from per-lane bits listed lane 0 first (paper layout).
uint64_t maskOf(std::initializer_list<int> Bits) {
  uint64_t M = 0;
  unsigned Lane = 0;
  for (int B : Bits) {
    if (B)
      M |= 1ULL << Lane;
    ++Lane;
  }
  return M;
}

class IsaSemantics : public ::testing::Test {
protected:
  mem::Memory M;
  Machine Mach{M};

  /// Runs a single-instruction program (plus halt).
  void runOne(const Instruction &I) {
    ProgramBuilder B;
    B.emit(I);
    B.halt();
    Program P = B.finalize();
    ExecResult R = Mach.run(P);
    ASSERT_EQ(R.Reason, StopReason::Halted);
  }

  void setLanesI32(unsigned VReg, std::initializer_list<int> Values) {
    unsigned Lane = 0;
    for (int V : Values)
      Mach.vectorReg(VReg).setLaneInt(ElemType::I32, Lane++, V);
  }

  std::vector<int32_t> lanesI32(unsigned VReg) {
    std::vector<int32_t> Out;
    for (unsigned L = 0; L < 16; ++L)
      Out.push_back(static_cast<int32_t>(
          Mach.getVector(VReg).laneInt(ElemType::I32, L)));
    return Out;
  }
};

// --- KFTM.EXC / KFTM.INC (Section 3.4 examples) ---------------------------===//

TEST_F(IsaSemantics, KftmExcPaperExample) {
  // k3 = 1100011100000000, k2 = 0001110000000000 (lane 0 leftmost).
  Mach.setMask(3, maskOf({1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0}));
  Mach.setMask(2, maskOf({0, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  ProgramBuilder B;
  B.kftmExc(Reg::mask(1), ElemType::I32, Reg::mask(2), Reg::mask(3));
  B.halt();
  Mach.run(B.finalize());
  EXPECT_EQ(Mach.getMask(1),
            maskOf({0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
}

TEST_F(IsaSemantics, KftmIncPaperExample) {
  Mach.setMask(3, maskOf({1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0}));
  Mach.setMask(2, maskOf({0, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  ProgramBuilder B;
  B.kftmInc(Reg::mask(1), ElemType::I32, Reg::mask(2), Reg::mask(3));
  B.halt();
  Mach.run(B.finalize());
  EXPECT_EQ(Mach.getMask(1),
            maskOf({0, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
}

TEST_F(IsaSemantics, KftmExcNoStopGivesAllEnabled) {
  Mach.setMask(3, 0);
  Mach.setMask(2, 0x0FF0);
  ProgramBuilder B;
  B.kftmExc(Reg::mask(1), ElemType::I32, Reg::mask(2), Reg::mask(3));
  B.halt();
  Mach.run(B.finalize());
  EXPECT_EQ(Mach.getMask(1), 0x0FF0u);
}

TEST_F(IsaSemantics, KftmExcLeadingLaneMakesProgress) {
  // A stop bit at the leading enabled lane is ignored: that lane has no
  // preceding lanes left to wait for. This is what guarantees forward
  // progress of the Figure 2(b) do/while VPL.
  Mach.setMask(3, maskOf({0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  Mach.setMask(2, maskOf({0, 0, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  ProgramBuilder B;
  B.kftmExc(Reg::mask(1), ElemType::I32, Reg::mask(2), Reg::mask(3));
  B.halt();
  Mach.run(B.finalize());
  // Lanes 2 (leading), 3, 4 execute; the stop at lane 5 still blocks.
  EXPECT_EQ(Mach.getMask(1),
            maskOf({0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
}

/// Property: the do/while VPL protocol terminates and covers every lane
/// exactly once for any stop mask.
TEST_F(IsaSemantics, KftmExcVplProtocolProperty) {
  Rng R(99);
  for (int Case = 0; Case < 200; ++Case) {
    uint64_t Loop = R.next() & 0xFFFF;
    uint64_t Stop = R.next() & 0xFFFF;
    uint64_t Todo = Loop;
    uint64_t CurStop = Stop & Todo;
    uint64_t Covered = 0;
    int Rounds = 0;
    do {
      Mach.setMask(4, Todo);
      Mach.setMask(5, CurStop);
      ProgramBuilder B;
      B.kftmExc(Reg::mask(6), ElemType::I32, Reg::mask(4), Reg::mask(5));
      B.halt();
      Mach.run(B.finalize());
      uint64_t Safe = Mach.getMask(6);
      if (Todo != 0) {
        ASSERT_NE(Safe, 0u) << "VPL must make progress";
      }
      ASSERT_EQ(Safe & Covered, 0u) << "lane executed twice";
      ASSERT_EQ(Safe & ~Todo, 0u) << "safe lanes must be pending";
      Covered |= Safe;
      Todo &= ~Safe;
      CurStop &= Todo;
      ASSERT_LT(++Rounds, 64) << "VPL failed to terminate";
    } while (CurStop != 0);
    // Final round (stop empty) covers the remainder by construction.
    EXPECT_EQ((Covered | Todo), Loop);
  }
}

// --- VPSLCTLAST (Section 3.5) ----------------------------------------------===//

TEST_F(IsaSemantics, SlctLastPaperExample) {
  // v1 = a..p; k1 has lanes 3..7 set; the last set bit is lane 7, so 'h'
  // (= v1[7]) is broadcast to every lane of the destination.
  for (unsigned L = 0; L < 16; ++L)
    Mach.vectorReg(1).setLaneInt(ElemType::I32, L, 'a' + static_cast<int>(L));
  Mach.setMask(1, maskOf({0, 0, 0, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0}));
  ProgramBuilder B;
  B.vslctlast(Reg::vector(2), ElemType::I32, Reg::mask(1), Reg::vector(1));
  B.halt();
  Mach.run(B.finalize());
  for (unsigned L = 0; L < 16; ++L)
    EXPECT_EQ(Mach.getVector(2).laneInt(ElemType::I32, L), 'h') << L;
}

TEST_F(IsaSemantics, SlctLastEmptyMaskSelectsLastLane) {
  for (unsigned L = 0; L < 16; ++L)
    Mach.vectorReg(1).setLaneInt(ElemType::I32, L, 100 + static_cast<int>(L));
  Mach.setMask(1, 0);
  ProgramBuilder B;
  B.vslctlast(Reg::vector(2), ElemType::I32, Reg::mask(1), Reg::vector(1));
  B.halt();
  Mach.run(B.finalize());
  EXPECT_EQ(Mach.getVector(2).laneInt(ElemType::I32, 0), 115);
}

// --- VPCONFLICTM (Section 3.6, both examples) -------------------------------===//

TEST_F(IsaSemantics, ConflictPaperExampleNoWriteMask) {
  setLanesI32(1, {1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 5, 7, 9, 9, 0xa, 0xa});
  setLanesI32(2, {0, 0, 0, 1, 5, 7, 9, 2, 0, 2, 3, 4, 0, 9, 0xa, 0xa});
  ProgramBuilder B;
  B.vconflictm(Reg::mask(1), ElemType::I32, Reg::none(), Reg::vector(1),
               Reg::vector(2));
  B.halt();
  Mach.run(B.finalize());
  EXPECT_EQ(Mach.getMask(1),
            maskOf({0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 1}));
}

TEST_F(IsaSemantics, ConflictPaperExampleWithWriteMask) {
  setLanesI32(1, {1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 5, 7, 9, 9, 0xa, 0xa});
  setLanesI32(2, {0, 0, 0, 1, 5, 7, 9, 2, 0, 2, 3, 4, 0, 9, 0xa, 0xa});
  Mach.setMask(2, maskOf({0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1}));
  ProgramBuilder B;
  B.vconflictm(Reg::mask(1), ElemType::I32, Reg::mask(2), Reg::vector(1),
               Reg::vector(2));
  B.halt();
  Mach.run(B.finalize());
  EXPECT_EQ(Mach.getMask(1),
            maskOf({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}));
}

TEST_F(IsaSemantics, ConflictNoMatchesYieldsEmptyMask) {
  setLanesI32(1, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  setLanesI32(2, {20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34,
                  35});
  ProgramBuilder B;
  B.vconflictm(Reg::mask(1), ElemType::I32, Reg::none(), Reg::vector(1),
               Reg::vector(2));
  B.halt();
  Mach.run(B.finalize());
  EXPECT_EQ(Mach.getMask(1), 0u);
}

// --- VPGATHERFF (Section 3.3.1 example) --------------------------------------===//

TEST_F(IsaSemantics, GatherFFPaperExample) {
  // Data a..p at valid indices; faulting locations at lanes 1, 6, and 12
  // (via indices pointing into unmapped memory). Lanes 0 and 1 are masked
  // off, so lane 2 is the non-speculative element. The fault at lane 6 —
  // the leftmost active speculative fault — zeroes mask bits 6..15.
  constexpr uint64_t Base = 0x20000;
  M.map(Base, 16 * 4);
  for (int I = 0; I < 16; ++I)
    M.set<int32_t>(Base + static_cast<uint64_t>(I) * 4, 'a' + I);

  // Index vector: lane L gathers element L, except lanes 1, 6, 12 which
  // point far past mapped memory.
  for (unsigned L = 0; L < 16; ++L)
    Mach.vectorReg(3).setLaneInt(ElemType::I32, L,
                                 (L == 1 || L == 6 || L == 12) ? 1 << 20
                                                               : static_cast<int>(L));
  Mach.setMask(1, 0xFFFC); // Lanes 0,1 disabled.
  for (unsigned L = 0; L < 16; ++L)
    Mach.vectorReg(1).setLaneInt(ElemType::I32, L, 7);
  Mach.setScalar(2, static_cast<int64_t>(Base));

  ProgramBuilder B;
  B.vgatherff(Reg::vector(1), ElemType::I32, Reg::mask(1), Reg::scalar(2),
              Reg::vector(3), 4, 0);
  B.halt();
  ExecResult R = Mach.run(B.finalize());
  ASSERT_EQ(R.Reason, StopReason::Halted) << "speculative faults suppressed";

  std::vector<int32_t> V = lanesI32(1);
  EXPECT_EQ(V[0], 7);
  EXPECT_EQ(V[1], 7);
  EXPECT_EQ(V[2], 'c');
  EXPECT_EQ(V[3], 'd');
  EXPECT_EQ(V[4], 'e');
  EXPECT_EQ(V[5], 'f');
  for (unsigned L = 6; L < 16; ++L)
    EXPECT_EQ(V[L], 7) << "lane " << L << " must be untouched";
  EXPECT_EQ(Mach.getMask(1),
            maskOf({0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
}

TEST_F(IsaSemantics, GatherFFNonSpeculativeFaultIsArchitectural) {
  Mach.setMask(1, 0xFFFF);
  for (unsigned L = 0; L < 16; ++L)
    Mach.vectorReg(3).setLaneInt(ElemType::I32, L, 1 << 20); // All unmapped.
  Mach.setScalar(2, 0x20000);
  ProgramBuilder B;
  B.vgatherff(Reg::vector(1), ElemType::I32, Reg::mask(1), Reg::scalar(2),
              Reg::vector(3), 4, 0);
  B.halt();
  ExecResult R = Mach.run(B.finalize());
  EXPECT_EQ(R.Reason, StopReason::Fault)
      << "a fault on the leftmost enabled element must be delivered";
}

TEST_F(IsaSemantics, MovFFClipsAtPageBoundary) {
  // Map exactly 8 elements ending at a page boundary; a 16-lane load from
  // the start must return the 8 valid elements and clear mask bits 8..15.
  constexpr uint64_t End = 0x30000;
  constexpr uint64_t Bytes = 8 * 4;
  M.map(End - mem::PageSize, mem::PageSize);
  for (int I = 0; I < 8; ++I)
    M.set<int32_t>(End - Bytes + static_cast<uint64_t>(I) * 4, 50 + I);

  Mach.setMask(1, 0xFFFF);
  Mach.setScalar(2, static_cast<int64_t>(End - Bytes));
  ProgramBuilder B;
  B.vmovff(Reg::vector(1), ElemType::I32, Reg::mask(1), Reg::scalar(2),
           Reg::none(), 1, 0);
  B.halt();
  ExecResult R = Mach.run(B.finalize());
  ASSERT_EQ(R.Reason, StopReason::Halted);
  EXPECT_EQ(Mach.getMask(1), 0x00FFu);
  for (unsigned L = 0; L < 8; ++L)
    EXPECT_EQ(Mach.getVector(1).laneInt(ElemType::I32, L), 50 + (int)L);
}

// --- Masked execution basics -------------------------------------------------===//

TEST_F(IsaSemantics, MaskedAddMergesInactiveLanes) {
  setLanesI32(1, {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1});
  setLanesI32(2, {2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2});
  setLanesI32(3, {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9});
  Mach.setMask(1, 0x00F0);
  ProgramBuilder B;
  B.vbinOp(Opcode::VAdd, ElemType::I32, Reg::vector(3), Reg::vector(1),
           Reg::vector(2), Reg::mask(1));
  B.halt();
  Mach.run(B.finalize());
  for (unsigned L = 0; L < 16; ++L)
    EXPECT_EQ(Mach.getVector(3).laneInt(ElemType::I32, L),
              (L >= 4 && L < 8) ? 3 : 9);
}

TEST_F(IsaSemantics, ScatterStoresLanesInAscendingOrder) {
  // Two lanes writing the same slot: the later lane must win, matching
  // scalar iteration order.
  constexpr uint64_t Base = 0x40000;
  M.map(Base, 64);
  setLanesI32(1, {5, 5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  setLanesI32(2, {111, 222, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  Mach.setMask(1, 0x3);
  Mach.setScalar(2, static_cast<int64_t>(Base));
  ProgramBuilder B;
  B.vscatter(ElemType::I32, Reg::mask(1), Reg::scalar(2), Reg::vector(1), 4,
             0, Reg::vector(2));
  B.halt();
  Mach.run(B.finalize());
  EXPECT_EQ(M.get<int32_t>(Base + 20), 222);
}

} // namespace
