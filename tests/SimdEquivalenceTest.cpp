//===- tests/SimdEquivalenceTest.cpp - SIMD-backend equivalence ------------===//
//
// The SIMD backend contract (emu/Machine.h): the AVX2 and AVX-512 lane
// kernel tables are *observably identical* to the scalar reference — same
// ExecStats field for field (including the fast-path counters, which count
// preconditions, not backend choices), same trace streams, same memory
// fingerprints and live-outs, same fault storms — so FLEXVEC_SIMD is
// purely a speed knob. This suite holds that contract across the whole
// Figure-8 corpus, both fuzz envelopes (pinned seeds), a seeded RTM abort
// storm with the backend pinned through FaultPlan, and a direct
// kernel-table differential over adversarial lane patterns.
//
// Backends that this build or host cannot execute resolve downward
// (Avx512 -> Avx2 -> Scalar), so on a non-AVX machine every leg collapses
// to scalar-vs-scalar and the suite degenerates to a smoke test rather
// than failing.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiled.h"
#include "core/Evaluator.h"
#include "core/FaultHarness.h"
#include "core/Pipeline.h"
#include "emu/simd/Kernels.h"
#include "gen/Gen.h"
#include "support/Hash.h"
#include "support/Random.h"
#include "workloads/Figure8.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace flexvec;

namespace {

uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

struct RecordDigest {
  uint64_t H = 0;
  uint64_t Count = 0;

  void fold(const emu::DynInstr &DI) {
    H = hashCombine(H, static_cast<uint64_t>(DI.Instr->Op));
    H = hashCombine(H, DI.InstrIdx);
    H = hashCombine(H, DI.NextIdx);
    H = hashCombine(H, DI.Taken ? 1 : 0);
    H = hashCombine(H, DI.ActiveMask);
    H = hashCombine(H, DI.AccessSize);
    H = hashCombine(H, DI.NumMemAddrs);
    for (uint32_t A = 0; A < DI.NumMemAddrs; ++A)
      H = hashCombine(H, DI.MemAddrs[A]);
    ++Count;
  }
};

class DigestSink : public emu::TraceSink {
public:
  RecordDigest D;
  void onInstr(const emu::DynInstr &DI) override { D.fold(DI); }
  void onBatch(const emu::DynInstr *Batch, size_t N) override {
    for (size_t I = 0; I < N; ++I)
      D.fold(Batch[I]);
  }
};

/// The backends this suite compares against the scalar reference: every
/// backend the build compiled in, whether or not the host can run it
/// (resolveSimdBackend degrades unsupported requests to scalar, which
/// keeps the comparison valid, just vacuous).
std::vector<emu::SimdBackend> comparedBackends() {
  std::vector<emu::SimdBackend> B;
  if (emu::simd::avx2Compiled())
    B.push_back(emu::SimdBackend::Avx2);
  if (emu::simd::avx512Compiled())
    B.push_back(emu::SimdBackend::Avx512);
  if (B.empty())
    B.push_back(emu::SimdBackend::Scalar); // smoke: scalar vs scalar
  return B;
}

/// runProgramMulti with the SIMD backend pinned (the core API resolves
/// SimdBackend::Auto from FLEXVEC_SIMD, which is exactly what an
/// equivalence test must not depend on).
core::RunOutcome runWithSimd(const ir::LoopFunction &F,
                             const codegen::CompiledLoop &CL,
                             const mem::Memory &BaseImage,
                             const std::vector<ir::Bindings> &Invocations,
                             emu::SimdBackend Backend,
                             emu::TraceSink *Sink = nullptr) {
  core::RunOutcome Out;
  Out.Ok = true;
  mem::Memory M = BaseImage.clone();
  core::setUpDispatchCell(CL, M);
  emu::Machine Machine(M);
  emu::RunLimits Limits;
  Limits.Simd = Backend;
  for (const ir::Bindings &B : Invocations) {
    Machine.resetRegisters();
    for (size_t S = 0; S < B.ScalarValues.size(); ++S)
      Machine.setScalar(codegen::scalarParamReg(static_cast<int>(S)).Index,
                        B.ScalarValues[S]);
    for (size_t A = 0; A < B.ArrayBases.size(); ++A)
      Machine.setScalar(codegen::arrayBaseReg(static_cast<int>(A)).Index,
                        static_cast<int64_t>(B.ArrayBases[A]));
    emu::ExecResult R = Machine.run(CL.Prog, Limits, Sink);
    Out.Exec.Stats.merge(R.Stats);
    if (R.Reason != emu::StopReason::Halted) {
      Out.Ok = false;
      Out.Error = "invocation failed: " + R.describe();
      break;
    }
    Out.LiveOuts.clear();
    for (size_t S = 0; S < B.ScalarValues.size(); ++S)
      Out.LiveOuts.push_back(Machine.getScalar(
          codegen::scalarParamReg(static_cast<int>(S)).Index));
    uint64_t H = Out.LiveOutHash;
    for (size_t S = 0; S < F.scalars().size(); ++S)
      if (F.scalar(S).IsLiveOut)
        H = hashCombine(H, static_cast<uint64_t>(Out.LiveOuts[S]));
    Out.LiveOutHash = H;
  }
  Out.Tx = Machine.txStats();
  Out.HasDispatch = core::tearDownDispatchCell(CL, M, Out.Dispatch);
  Out.MemFingerprint = M.fingerprint();
  return Out;
}

/// Every field of ExecStats. The fast-path counters are backend-invariant
/// by design (fast paths trigger on preconditions checked in shared
/// handler code), so they compare exactly too.
void expectStatsEqual(const emu::ExecStats &A, const emu::ExecStats &B,
                      const std::string &Where) {
  EXPECT_EQ(A.Instructions, B.Instructions) << Where;
  EXPECT_EQ(A.Branches, B.Branches) << Where;
  EXPECT_EQ(A.TakenBranches, B.TakenBranches) << Where;
  EXPECT_EQ(A.MemoryAccesses, B.MemoryAccesses) << Where;
  EXPECT_EQ(A.VectorOps, B.VectorOps) << Where;
  EXPECT_EQ(A.RtmRetries, B.RtmRetries) << Where;
  EXPECT_EQ(A.RtmFallbacks, B.RtmFallbacks) << Where;
  EXPECT_EQ(A.RtmBudgetExhausted, B.RtmBudgetExhausted) << Where;
  EXPECT_EQ(A.BackoffCycles, B.BackoffCycles) << Where;
  EXPECT_EQ(A.VplSteps, B.VplSteps) << Where;
  EXPECT_EQ(A.VplPartitions, B.VplPartitions) << Where;
  EXPECT_EQ(A.FFClips, B.FFClips) << Where;
  EXPECT_EQ(A.FFSuppressedLanes, B.FFSuppressedLanes) << Where;
  EXPECT_EQ(A.ConflictChecks, B.ConflictChecks) << Where;
  EXPECT_EQ(A.ConflictHits, B.ConflictHits) << Where;
  EXPECT_EQ(A.SimdUnitStrideHits, B.SimdUnitStrideHits) << Where;
  EXPECT_EQ(A.SimdMaskShortcircuits, B.SimdMaskShortcircuits) << Where;
  EXPECT_EQ(A.MaskDensity, B.MaskDensity) << Where;
  EXPECT_EQ(A.RtmRetryDepth, B.RtmRetryDepth) << Where;
  EXPECT_EQ(A.OpcodeCounts, B.OpcodeCounts) << Where;
}

std::string cellName(const std::string &Workload, unsigned V,
                     emu::SimdBackend Backend) {
  return Workload + "/" + core::variantName(static_cast<core::VariantId>(V)) +
         " vs " + emu::simdBackendName(Backend);
}

// --- Figure-8 corpus: stats, memory, live-outs, and traces ---------------===//

TEST(SimdEquivalence, Figure8CellsIdenticalAcrossBackends) {
  workloads::Figure8Suite Suite =
      workloads::buildFigure8Suite(/*IterationScale=*/0.02);
  uint64_t CellsChecked = 0;
  for (const core::SweepWorkload &W : Suite.Workloads) {
    core::PipelineResult PR = core::compileLoop(*W.F);
    Rng R(deriveStreamSeed(/*BaseSeed=*/1, fnv1a64(W.Name)));
    core::WorkloadInstance In = W.Gen(R);
    for (unsigned V = 0; V < core::NumVariants; ++V) {
      const codegen::CompiledLoop *CL =
          core::selectVariant(PR, static_cast<core::VariantId>(V));
      if (!CL)
        continue;
      core::RunOutcome Ref = runWithSimd(*W.F, *CL, In.Image, In.Invocations,
                                         emu::SimdBackend::Scalar);
      ASSERT_TRUE(Ref.Ok) << W.Name << ": " << Ref.Error;
      for (emu::SimdBackend Backend : comparedBackends()) {
        std::string Where = cellName(W.Name, V, Backend);
        core::RunOutcome Out =
            runWithSimd(*W.F, *CL, In.Image, In.Invocations, Backend);
        ASSERT_TRUE(Out.Ok) << Where << ": " << Out.Error;
        expectStatsEqual(Ref.Exec.Stats, Out.Exec.Stats, Where);
        EXPECT_EQ(Ref.MemFingerprint, Out.MemFingerprint) << Where;
        EXPECT_EQ(Ref.LiveOutHash, Out.LiveOutHash) << Where;
        EXPECT_EQ(Ref.LiveOuts, Out.LiveOuts) << Where;
        EXPECT_EQ(Ref.Tx.Commits, Out.Tx.Commits) << Where;
        EXPECT_EQ(Ref.Tx.Aborts, Out.Tx.Aborts) << Where;
        ++CellsChecked;
      }
    }
  }
  EXPECT_GE(CellsChecked, 18u * 2u);
}

TEST(SimdEquivalence, TraceStreamsIdenticalAcrossBackends) {
  // Tracing runs take the per-lane reference loops for memory ops (the
  // batched paths don't book per-lane trace addresses), but the ALU
  // kernels still execute — the stream digest proves lane-exact results
  // flow into identical DynInstr records either way.
  workloads::Figure8Suite Suite =
      workloads::buildFigure8Suite(/*IterationScale=*/0.02);
  uint64_t CellsChecked = 0;
  for (const core::SweepWorkload &W : Suite.Workloads) {
    core::PipelineResult PR = core::compileLoop(*W.F);
    Rng R(deriveStreamSeed(1, fnv1a64(W.Name)));
    core::WorkloadInstance In = W.Gen(R);
    for (unsigned V = 0; V < core::NumVariants; ++V) {
      const codegen::CompiledLoop *CL =
          core::selectVariant(PR, static_cast<core::VariantId>(V));
      if (!CL)
        continue;
      DigestSink RefSink;
      core::RunOutcome Ref = runWithSimd(*W.F, *CL, In.Image, In.Invocations,
                                         emu::SimdBackend::Scalar, &RefSink);
      ASSERT_TRUE(Ref.Ok) << W.Name;
      for (emu::SimdBackend Backend : comparedBackends()) {
        std::string Where = cellName(W.Name, V, Backend);
        DigestSink Sink;
        core::RunOutcome Out = runWithSimd(*W.F, *CL, In.Image,
                                           In.Invocations, Backend, &Sink);
        ASSERT_TRUE(Out.Ok) << Where;
        EXPECT_EQ(RefSink.D.Count, Sink.D.Count) << Where;
        EXPECT_EQ(RefSink.D.H, Sink.D.H)
            << Where << ": backend delivered a different trace";
        ++CellsChecked;
      }
    }
  }
  EXPECT_GE(CellsChecked, 18u * 2u);
}

// --- Fuzz envelopes, pinned seeds ----------------------------------------===//

void runFuzzEquivalence(const gen::Envelope &E, uint64_t Seed) {
  gen::GeneratedLoop G = gen::generateLoop(Seed, E);
  core::PipelineResult PR = core::compileLoop(*G.F);
  gen::InputPlan Plan;
  Plan.IndexMask = E.IndexMask;
  Plan.IndexBound = E.TableSize;
  Plan.ArraySlack = E.MaxAffineOffset + 4;
  Rng R(deriveStreamSeed(Seed, 0xd15b));
  mem::Memory Image;
  ir::Bindings B = ir::Bindings::forFunction(*G.F);
  gen::buildConventionInputs(*G.F, R, Plan, Image, B);
  std::vector<ir::Bindings> Invocations{B, B};
  for (unsigned V = 0; V < core::NumVariants; ++V) {
    const codegen::CompiledLoop *CL =
        core::selectVariant(PR, static_cast<core::VariantId>(V));
    if (!CL)
      continue;
    core::RunOutcome Ref = runWithSimd(*G.F, *CL, Image, Invocations,
                                       emu::SimdBackend::Scalar);
    ASSERT_TRUE(Ref.Ok) << "seed " << Seed << ": " << Ref.Error;
    for (emu::SimdBackend Backend : comparedBackends()) {
      std::string Where = "seed " + std::to_string(Seed) + " variant " +
                          core::variantName(static_cast<core::VariantId>(V)) +
                          " vs " + emu::simdBackendName(Backend);
      core::RunOutcome Out = runWithSimd(*G.F, *CL, Image, Invocations,
                                         Backend);
      ASSERT_TRUE(Out.Ok) << Where << ": " << Out.Error;
      expectStatsEqual(Ref.Exec.Stats, Out.Exec.Stats, Where);
      EXPECT_EQ(Ref.MemFingerprint, Out.MemFingerprint) << Where;
      EXPECT_EQ(Ref.LiveOutHash, Out.LiveOutHash) << Where;
    }
  }
}

TEST(SimdEquivalence, ClassicEnvelopeIdenticalAcrossBackends) {
  for (uint64_t Seed = 0; Seed < 12; ++Seed)
    runFuzzEquivalence(gen::Envelope::classic(), Seed);
}

TEST(SimdEquivalence, WidenedEnvelopeIdenticalAcrossBackends) {
  for (uint64_t Seed = 0; Seed < 12; ++Seed)
    runFuzzEquivalence(gen::Envelope::widened(), Seed);
}

// --- Fault storm ---------------------------------------------------------===//

TEST(SimdEquivalence, FaultStormIdenticalAcrossBackends) {
  // A seeded RTM conflict-abort storm under each backend: aborts must
  // land on the same operations, roll back the same lanes, and retry to
  // the same architectural outcome whether the handler bodies ran on
  // reference loops or host SIMD (the batched gather/scatter fast path
  // disarms itself inside transactions; the storm proves it).
  workloads::Figure8Suite Suite =
      workloads::buildFigure8Suite(/*IterationScale=*/0.02);
  uint64_t StormyCells = 0;
  for (const core::SweepWorkload &W : Suite.Workloads) {
    core::PipelineResult PR = core::compileLoop(*W.F);
    Rng R(deriveStreamSeed(1, fnv1a64(W.Name)));
    core::WorkloadInstance In = W.Gen(R);
    for (unsigned V = 0; V < core::NumVariants; ++V) {
      const codegen::CompiledLoop *CL =
          core::selectVariant(PR, static_cast<core::VariantId>(V));
      if (!CL)
        continue;
      core::FaultPlan Plan;
      Plan.Tx.Seed = deriveStreamSeed(fnv1a64(W.Name), V);
      Plan.Tx.AbortProb = 0.5;

      Plan.Simd = emu::SimdBackend::Scalar;
      core::FaultedRun Ref = core::runProgramMultiWithFaults(
          *W.F, *CL, In.Image, In.Invocations, Plan);
      for (emu::SimdBackend Backend : comparedBackends()) {
        std::string Where = cellName(W.Name, V, Backend);
        Plan.Simd = Backend;
        core::FaultedRun Out = core::runProgramMultiWithFaults(
            *W.F, *CL, In.Image, In.Invocations, Plan);

        ASSERT_EQ(Ref.Outcome.Ok, Out.Outcome.Ok) << Where;
        expectStatsEqual(Ref.Outcome.Exec.Stats, Out.Outcome.Exec.Stats,
                         Where);
        EXPECT_EQ(Ref.Outcome.MemFingerprint, Out.Outcome.MemFingerprint)
            << Where;
        EXPECT_EQ(Ref.Outcome.LiveOutHash, Out.Outcome.LiveOutHash) << Where;
        EXPECT_EQ(Ref.Injection.TxOpsSeen, Out.Injection.TxOpsSeen) << Where;
        EXPECT_EQ(Ref.Injection.TxAbortsInjected,
                  Out.Injection.TxAbortsInjected)
            << Where;
        EXPECT_EQ(Ref.Tx.Commits, Out.Tx.Commits) << Where;
        EXPECT_EQ(Ref.Tx.Aborts, Out.Tx.Aborts) << Where;
      }
      StormyCells += Ref.Injection.TxAbortsInjected > 0;
    }
  }
  EXPECT_GT(StormyCells, 0u);
}

// --- Direct kernel-table differential ------------------------------------===//

// Adversarial lane payloads: NaNs (quiet and signaling, both signs),
// infinities, signed zeros, subnormals, INT_MIN/INT_MAX boundaries, and
// dense pseudorandom bits. Every kernel in every compiled table must
// produce byte-identical destinations and identical mask words to the
// scalar reference table for every (operands, mask) combination here.
class KernelDifferential : public ::testing::Test {
protected:
  static constexpr size_t VecBytes = 64;
  alignas(64) uint8_t A[VecBytes];
  alignas(64) uint8_t B[VecBytes];
  alignas(64) uint8_t DstRef[VecBytes];
  alignas(64) uint8_t DstOut[VecBytes];

  Rng R{0x51AD};

  void fillPattern(uint8_t *P, unsigned Which) {
    // 16 lanes of 32-bit payloads; the same bytes reinterpret as 8
    // 64-bit lanes, so one table covers both widths.
    static const uint32_t Specials[] = {
        0x7fc00000u, // qNaN
        0xffc00000u, // -qNaN
        0x7fa00000u, // sNaN
        0xffa00000u, // -sNaN
        0x7f800000u, // +inf
        0xff800000u, // -inf
        0x00000000u, // +0
        0x80000000u, // -0
        0x00000001u, // min subnormal
        0x007fffffu, // max subnormal
        0x7f7fffffu, // FLT_MAX
        0x3f800000u, // 1.0f
        0x7fffffffu, // INT32_MAX
        0x80000000u, // INT32_MIN
        0xffffffffu, // -1
        0x00000080u, // small int
    };
    for (unsigned L = 0; L < 16; ++L) {
      uint32_t V;
      if (Which == 0)
        V = Specials[L];
      else if (Which == 1)
        V = Specials[15 - L];
      else
        V = static_cast<uint32_t>(R.next());
      std::memcpy(P + L * 4, &V, 4);
    }
  }

  // The masks that matter: none, all (both widths), alternating, one
  // lane, and random.
  std::vector<uint64_t> masks32() {
    return {0, 0xffff, 0x5555, 0xaaaa, 0x0001, 0x8000,
            R.next() & 0xffff, R.next() & 0xffff};
  }
  std::vector<uint64_t> masks64() {
    return {0, 0xff, 0x55, 0xaa, 0x01, 0x80, R.next() & 0xff,
            R.next() & 0xff};
  }

  void seedDst() {
    for (unsigned I = 0; I < VecBytes; ++I)
      DstRef[I] = DstOut[I] = static_cast<uint8_t>(0xC3 ^ I);
  }
};

TEST_F(KernelDifferential, AllKernelsMatchScalarReference) {
  const emu::simd::KernelTable &Ref = emu::simd::scalarKernels();
  struct Named {
    const char *Name;
    const emu::simd::KernelTable *T;
  };
  std::vector<Named> Tables;
  if (emu::simd::avx2Compiled())
    Tables.push_back({"avx2", &emu::simd::avx2Kernels()});
  if (emu::simd::avx512Compiled())
    Tables.push_back({"avx512", &emu::simd::avx512Kernels()});
  if (Tables.empty())
    GTEST_SKIP() << "no SIMD backend compiled in";

  for (unsigned Pat = 0; Pat < 6; ++Pat) {
    fillPattern(A, Pat % 3);
    fillPattern(B, (Pat + 1) % 3);
    for (const Named &N : Tables) {
      auto check = [&](const std::string &What, unsigned Col, auto RefFn,
                       auto OutFn, uint64_t Mask) {
        seedDst();
        RefFn(DstRef);
        OutFn(DstOut);
        EXPECT_EQ(0, std::memcmp(DstRef, DstOut, VecBytes))
            << N.Name << " " << What << " col " << Col << " mask " << Mask
            << " pattern " << Pat;
      };
      for (unsigned Col = 0; Col < 4; ++Col) {
        const bool Wide = (Col == 1 || Col == 3);
        for (uint64_t Mask : Wide ? masks64() : masks32()) {
          for (unsigned S = 0; S < 8; ++S)
            check("IntBin slot " + std::to_string(S), Col,
                  [&](uint8_t *D) { Ref.IntBin[S][Col](D, A, B, Mask); },
                  [&](uint8_t *D) { N.T->IntBin[S][Col](D, A, B, Mask); },
                  Mask);
          for (unsigned S = 0; S < 3; ++S)
            for (int64_t Imm : {int64_t(0), int64_t(3), int64_t(-7),
                                int64_t(31), int64_t(63),
                                int64_t(INT64_MAX), int64_t(INT64_MIN)})
              check("IntImm", Col,
                    [&](uint8_t *D) { Ref.IntImm[S][Col](D, A, Imm, Mask); },
                    [&](uint8_t *D) { N.T->IntImm[S][Col](D, A, Imm, Mask); },
                    Mask);
          check("Blend", Col,
                [&](uint8_t *D) { Ref.Blend[Col](D, A, B, Mask); },
                [&](uint8_t *D) { N.T->Blend[Col](D, A, B, Mask); }, Mask);
          for (int64_t V : {int64_t(0), int64_t(-1), int64_t(0x7fc00000),
                            int64_t(INT64_MIN)})
            check("Broadcast", Col,
                  [&](uint8_t *D) { Ref.Broadcast[Col](D, V, Mask); },
                  [&](uint8_t *D) { N.T->Broadcast[Col](D, V, Mask); },
                  Mask);
          // Compares and conflict return mask words, not vectors.
          for (unsigned C = 0; C < 6; ++C) {
            EXPECT_EQ(Ref.CmpInt[C][Col](A, B, Mask),
                      N.T->CmpInt[C][Col](A, B, Mask))
                << N.Name << " CmpInt cond " << C << " col " << Col
                << " mask " << Mask << " pattern " << Pat;
            for (int64_t Imm :
                 {int64_t(0), int64_t(-1), int64_t(1) << 33,
                  -(int64_t(1) << 33), int64_t(INT64_MAX), int64_t(128)})
              EXPECT_EQ(Ref.CmpImmInt[C][Col](A, Imm, Mask),
                        N.T->CmpImmInt[C][Col](A, Imm, Mask))
                  << N.Name << " CmpImmInt cond " << C << " col " << Col
                  << " imm " << Imm;
          }
          EXPECT_EQ(Ref.Conflict[Col](A, B, Mask),
                    N.T->Conflict[Col](A, B, Mask))
              << N.Name << " Conflict col " << Col << " mask " << Mask;
        }
        check("Index", Col, [&](uint8_t *D) { Ref.Index[Col](D, -17); },
              [&](uint8_t *D) { N.T->Index[Col](D, -17); }, 0);
      }
      // FP families: columns are [F32, F64].
      for (unsigned Col = 0; Col < 2; ++Col) {
        for (uint64_t Mask : Col ? masks64() : masks32()) {
          for (unsigned S = 0; S < 6; ++S)
            check("FpBin slot " + std::to_string(S), Col,
                  [&](uint8_t *D) { Ref.FpBin[S][Col](D, A, B, Mask); },
                  [&](uint8_t *D) { N.T->FpBin[S][Col](D, A, B, Mask); },
                  Mask);
          for (unsigned C = 0; C < 6; ++C) {
            EXPECT_EQ(Ref.CmpFp[C][Col](A, B, Mask),
                      N.T->CmpFp[C][Col](A, B, Mask))
                << N.Name << " CmpFp cond " << C << " col " << Col << " mask "
                << Mask << " pattern " << Pat;
            for (int64_t Imm : {int64_t(0), int64_t(-3), int64_t(1) << 40})
              EXPECT_EQ(Ref.CmpImmFp[C][Col](A, Imm, Mask),
                        N.T->CmpImmFp[C][Col](A, Imm, Mask))
                  << N.Name << " CmpImmFp cond " << C << " col " << Col
                  << " imm " << Imm;
          }
        }
      }
      // Gather address generation: every scale the ISA can encode plus a
      // non-power-of-two and zero.
      for (unsigned Col = 0; Col < 4; ++Col)
        for (uint8_t Scale : {0, 1, 2, 4, 8, 3, 255}) {
          uint64_t RefAddrs[16], OutAddrs[16];
          std::memset(RefAddrs, 0xAB, sizeof(RefAddrs));
          std::memset(OutAddrs, 0xAB, sizeof(OutAddrs));
          Ref.GatherAddr[Col](RefAddrs, A, /*Base=*/0x40000,
                              /*Disp=*/-24, Scale);
          N.T->GatherAddr[Col](OutAddrs, A, 0x40000, -24, Scale);
          EXPECT_EQ(0, std::memcmp(RefAddrs, OutAddrs, sizeof(RefAddrs)))
              << N.Name << " GatherAddr col " << Col << " scale "
              << unsigned(Scale) << " pattern " << Pat;
        }
    }
  }
}

} // namespace
