//===- tests/BenchmarksTest.cpp - The 18 evaluation kernels ----------------===//
//
// For every Table 2 benchmark: the plan must need FlexVec, the generated
// FlexVec program must use exactly the paper's instruction-mix classes,
// the profiler-driven cost model must accept the loop, and (at reduced
// scale) the FlexVec and RTM programs must match the reference
// interpreter across all invocations.
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "profile/LoopProfiler.h"
#include "workloads/Benchmarks.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::workloads;

namespace {

std::vector<Benchmark> &benchmarks() {
  static std::vector<Benchmark> B = buildAllBenchmarks(/*IterationScale=*/0.1);
  return B;
}

class BenchmarkSuite : public ::testing::TestWithParam<int> {};

} // namespace

TEST(Benchmarks, HasElevenSpecAndSevenApps) {
  int Spec = 0, Apps = 0;
  for (const Benchmark &B : benchmarks())
    (B.Group == "SPEC" ? Spec : Apps) += 1;
  EXPECT_EQ(Spec, 11);
  EXPECT_EQ(Apps, 7);
}

TEST_P(BenchmarkSuite, PlanAndInstructionMixMatchTable2) {
  Benchmark &B = benchmarks()[static_cast<size_t>(GetParam())];
  core::PipelineResult PR = core::compileLoop(*B.F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << B.Name << ": " << PR.Plan.Reason;
  EXPECT_TRUE(PR.Plan.needsFlexVec()) << B.Name;
  EXPECT_FALSE(PR.Traditional.has_value())
      << B.Name << ": the baseline must not vectorize a FlexVec candidate";
  ASSERT_TRUE(PR.FlexVec.has_value()) << B.Name;

  const isa::Program &P = PR.FlexVec->Prog;
  bool UsesKftm =
      P.usesOpcode(isa::Opcode::KFtmExc) || P.usesOpcode(isa::Opcode::KFtmInc);
  bool UsesSlct = P.usesOpcode(isa::Opcode::VSlctLast);
  bool UsesConflict = P.usesOpcode(isa::Opcode::VConflictM);
  bool UsesFF = P.usesOpcode(isa::Opcode::VGatherFF) ||
                P.usesOpcode(isa::Opcode::VMovFF);

  EXPECT_TRUE(UsesKftm) << B.Name << ": every row of Table 2 lists KFTM";
  EXPECT_EQ(UsesSlct, B.PaperMix.find("VPSLCTLAST") != std::string::npos)
      << B.Name;
  EXPECT_EQ(UsesConflict, B.PaperMix.find("VPCONFLICTM") != std::string::npos)
      << B.Name;
  EXPECT_EQ(UsesFF, B.PaperMix.find("VPGATHERFF") != std::string::npos)
      << B.Name;
}

TEST_P(BenchmarkSuite, FlexVecAndRtmMatchReference) {
  Benchmark &B = benchmarks()[static_cast<size_t>(GetParam())];
  core::PipelineResult PR = core::compileLoop(*B.F, /*RtmTile=*/96);
  Rng R(42 + static_cast<uint64_t>(GetParam()));
  BenchInstance In = B.Gen(R);
  // Keep test time bounded.
  if (In.Invocations.size() > 40)
    In.Invocations.resize(40);

  core::RunOutcome Ref = core::runReferenceMulti(*B.F, In.Image,
                                                 In.Invocations);
  core::RunOutcome Scalar = core::runProgramMulti(*B.F, PR.Scalar, In.Image,
                                                  In.Invocations);
  EXPECT_TRUE(core::outcomesMatch(*B.F, Ref, Scalar)) << B.Name << " scalar";
  core::RunOutcome Flex = core::runProgramMulti(*B.F, *PR.FlexVec, In.Image,
                                                In.Invocations);
  EXPECT_TRUE(core::outcomesMatch(*B.F, Ref, Flex)) << B.Name << " flexvec";
  ASSERT_TRUE(PR.Rtm.has_value());
  core::RunOutcome Rtm = core::runProgramMulti(*B.F, *PR.Rtm, In.Image,
                                               In.Invocations);
  EXPECT_TRUE(core::outcomesMatch(*B.F, Ref, Rtm)) << B.Name << " rtm";
}

TEST_P(BenchmarkSuite, CostModelAcceptsProfiledLoop) {
  Benchmark &B = benchmarks()[static_cast<size_t>(GetParam())];
  core::PipelineResult PR = core::compileLoop(*B.F);
  Rng R(7);
  BenchInstance In = B.Gen(R);
  if (In.Invocations.size() > 20)
    In.Invocations.resize(20);

  profile::LoopProfiler Prof(*B.F, PR.Plan);
  mem::Memory M = In.Image.clone();
  for (const ir::Bindings &Inv : In.Invocations)
    Prof.profileRun(M, Inv);

  analysis::LoopProfile Summary = Prof.summarize(B.Coverage);
  // The paper's selection heuristics must accept each of its own
  // benchmarks: trip >= 16, effective VL >= 6, coverage >= 5%... except
  // that 403.gcc sits at 4.1% coverage in Table 2; the paper still lists
  // it, so compare with a slightly relaxed floor.
  analysis::CostModelParams Params;
  Params.MinCoverage = 0.04;
  analysis::CostDecision Dec =
      analysis::shouldVectorize(PR.Plan, PR.Shape, Summary, Params);
  EXPECT_TRUE(Dec.Vectorize) << B.Name << ": " << Dec.Reason
                             << " (trip=" << Summary.AvgTripCount
                             << ", effVL=" << Summary.EffectiveVL << ")";
}

INSTANTIATE_TEST_SUITE_P(
    All, BenchmarkSuite, ::testing::Range(0, 18),
    [](const ::testing::TestParamInfo<int> &Info) {
      std::string Name = benchmarks()[static_cast<size_t>(Info.param)].Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
