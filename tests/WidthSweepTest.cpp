//===- tests/WidthSweepTest.cpp - Width-generic pipeline sweep -------------===//
//
// The width-genericity contract: the whole stack — codegen, the five
// lowering strategies, the emulator, the SIMD lane kernels, and the
// timing model — produces correct programs at every supported vector
// length, not just the 512-bit default. Every case runs the same
// six-variant differential gen::checkLoop enforces elsewhere (reference
// interpreter vs all generated variants, no-silent-decline remarks, DSL
// round trip), swept over VL ∈ {128, 256, 512, 1024, 2048} bits:
//
//   * the checked-in tests/corpus loops,
//   * fresh seeds from both fuzz envelopes (classic + widened),
//   * the SVE-style predicated lowering mode at every width, and
//   * an RTM conflict-storm pass at one narrow (128) and one wide
//     (2048) width.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "gen/Differential.h"
#include "gen/Gen.h"
#include "ir/Parser.h"
#include "isa/Reg.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

using namespace flexvec;

namespace {

// The five supported widths, in bits.
const unsigned AllWidthsBits[] = {128, 256, 512, 1024, 2048};

// The conflict-storm pass runs at one narrow and one wide width; the
// middle widths skip it to keep the sweep's wall time bounded.
bool stormsAt(unsigned Bits) { return Bits == 128 || Bits == 2048; }

gen::CheckOptions optionsFor(const gen::Envelope &E, unsigned Bits,
                             bool Predicated, uint64_t StormSeed) {
  gen::CheckOptions CO;
  CO.Vec = isa::VectorConfig(Bits / 8);
  CO.Predicated = Predicated;
  CO.Inputs.IndexMask = E.IndexMask;
  CO.Inputs.IndexBound = E.TableSize;
  CO.Inputs.ArraySlack = E.MaxAffineOffset + 4;
  CO.StormSeed = stormsAt(Bits) ? StormSeed : 0;
  return CO;
}

void expectClean(const ir::LoopFunction &F, uint64_t Seed,
                 const gen::CheckOptions &CO, const std::string &Label) {
  gen::CheckResult R = gen::checkLoop(F, Seed, CO);
  ASSERT_TRUE(R.ok()) << Label << " @vl=" << CO.Vec.bits()
                      << (CO.Predicated ? " (predicated)" : "") << ": "
                      << gen::failureClassName(R.Class)
                      << (R.Variant.empty() ? "" : " in ") << R.Variant
                      << "\n"
                      << R.Detail;
}

ir::ParseResult parseCorpus(const std::string &Name) {
  std::string Path =
      std::string(FLEXVEC_SOURCE_DIR) + "/tests/corpus/" + Name + ".fv";
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return ir::parseLoop(SS.str());
}

const char *const CorpusNames[] = {
    "argmin_key2",  "find_sentinel", "histogram_weighted",
    "exit_then_update", "masked_else", "update_conflict",
    "nested_gather", "stride_probe",  "gather_heavy"};

class WidthSweep : public ::testing::TestWithParam<unsigned> {};

// The full checked-in corpus, differentially, at this width — including
// the RTM conflict storm at the narrow/wide endpoints.
TEST_P(WidthSweep, CorpusAllVariantsMatchReference) {
  unsigned Bits = GetParam();
  for (const char *Name : CorpusNames) {
    ir::ParseResult P = parseCorpus(Name);
    ASSERT_TRUE(P) << Name << ": " << P.Error;
    uint64_t Seed = fnv1a64(Name);
    expectClean(*P.F, Seed,
                optionsFor(gen::Envelope::classic(), Bits, false,
                           deriveStreamSeed(Seed, 0xc0 + Bits)),
                Name);
  }
}

// Both fuzz envelopes at this width: fresh seeds, disjoint from the ones
// FuzzDifferentialTest pins, so the sweep adds coverage instead of
// repeating it.
TEST_P(WidthSweep, FuzzEnvelopesMatchReference) {
  unsigned Bits = GetParam();
  for (uint64_t Case = 0; Case < 4; ++Case) {
    uint64_t Seed = 0x3d000000ULL + Bits * 100 + Case;
    gen::GeneratedLoop G = gen::generateLoop(Seed, gen::Envelope::classic());
    expectClean(*G.F, Seed,
                optionsFor(gen::Envelope::classic(), Bits, false,
                           deriveStreamSeed(Seed, 0xfa117)),
                "classic seed " + std::to_string(Seed));
  }
  for (uint64_t Case = 0; Case < 4; ++Case) {
    uint64_t Seed = 0x7e000000ULL + Bits * 100 + Case;
    gen::GeneratedLoop G = gen::generateLoop(Seed, gen::Envelope::widened());
    expectClean(*G.F, Seed,
                optionsFor(gen::Envelope::widened(), Bits, false,
                           deriveStreamSeed(Seed, 0xfa117)),
                "widened seed " + std::to_string(Seed));
  }
}

// The SVE-style predicated mode: whilelt loop-control masks instead of
// the broadcast/vcmp chunk bound, at every width. Same differential bar.
TEST_P(WidthSweep, PredicatedModeMatchesReference) {
  unsigned Bits = GetParam();
  for (const char *Name : CorpusNames) {
    ir::ParseResult P = parseCorpus(Name);
    ASSERT_TRUE(P) << Name << ": " << P.Error;
    uint64_t Seed = fnv1a64(Name) ^ 0x9e3779b9ULL;
    expectClean(*P.F, Seed,
                optionsFor(gen::Envelope::classic(), Bits, true,
                           deriveStreamSeed(Seed, 0xb1ed)),
                Name);
  }
}

// Predicated lowering really uses KWHILELT for loop control, and the
// compiled program records the width it was built for.
TEST_P(WidthSweep, PredicatedProgramsUseWhilelt) {
  unsigned Bits = GetParam();
  ir::ParseResult P = parseCorpus("argmin_key2");
  ASSERT_TRUE(P) << P.Error;

  driver::DriverOptions Opts;
  Opts.Vec = isa::VectorConfig(Bits / 8);
  Opts.Predicated = true;
  driver::CompileResult PR = driver::compileLoop(*P.F, Opts);
  ASSERT_TRUE(PR.FlexVec.has_value());
  EXPECT_EQ(PR.FlexVec->Prog.vectorBytes(), Bits / 8);
  EXPECT_NE(PR.FlexVec->Prog.disassemble().find("kwhilelt"),
            std::string::npos);
  EXPECT_NE(PR.FlexVec->Notes.find("predicated"), std::string::npos);

  // Default mode at the same width keeps the classic chunk head.
  Opts.Predicated = false;
  driver::CompileResult PD = driver::compileLoop(*P.F, Opts);
  ASSERT_TRUE(PD.FlexVec.has_value());
  EXPECT_EQ(PD.FlexVec->Prog.disassemble().find("kwhilelt"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::ValuesIn(AllWidthsBits));

// Lane counts follow the config: one source of truth, parameterized.
TEST(WidthSweepConfig, LaneCountsScaleWithWidth) {
  for (unsigned Bits : AllWidthsBits) {
    isa::VectorConfig V(Bits / 8);
    EXPECT_EQ(V.lanes(isa::ElemType::I32), Bits / 32);
    EXPECT_EQ(V.lanes(isa::ElemType::F64), Bits / 64);
    EXPECT_EQ(V.maxLanes(), Bits / 32);
  }
  EXPECT_FALSE(isa::VectorConfig::isValidBits(64));
  EXPECT_FALSE(isa::VectorConfig::isValidBits(384));
  EXPECT_FALSE(isa::VectorConfig::isValidBits(4096));
  for (unsigned Bits : AllWidthsBits)
    EXPECT_TRUE(isa::VectorConfig::isValidBits(Bits));
}

} // namespace
