//===- tests/BenchDiffTest.cpp - Bench regression comparator tests ---------===//
//
// The flexvec-benchdiff contract, at both layers:
//
//   * obs::diffBench — identical documents pass (exit 0); a deliberately
//     injected 5% per-cell cycle regression, a correctness flip, a vanished
//     cell, or a tripped metric threshold fail (exit 1); schema or sweep-
//     configuration mismatches are "not comparable" (exit 2).
//   * The installed binary — same contract end-to-end through argv and
//     real files, the way the CI bench-gate job invokes it.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchDiff.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/wait.h>

using namespace flexvec;

namespace {

//===----------------------------------------------------------------------===//
// Fixture builder: a minimal but schema-complete bench document
//===----------------------------------------------------------------------===//

struct CellSpec {
  const char *Benchmark;
  const char *Variant;
  bool Generated = true;
  bool Correct = true;
  uint64_t Cycles = 1000;
};

Json makeBench(std::vector<CellSpec> Cells, double SpecGeo = 1.10,
               double AppsGeo = 1.12, const char *Schema =
                   "flexvec-bench-figure8/v2") {
  Json Doc = Json::object();
  Doc.set("schema", Schema);
  Doc.set("seed", uint64_t(1));
  Doc.set("scale", 0.1);
  Doc.set("trips", uint64_t(1));
  Json Geo = Json::object();
  Geo.set("spec", SpecGeo);
  Geo.set("apps", AppsGeo);
  Doc.set("geomean_overall_speedup", std::move(Geo));

  Json Metrics = Json::object();
  Metrics.set("emu.instructions", uint64_t(5000));
  Metrics.set("emu.rtm.fallbacks", uint64_t(0));
  Json Hist = Json::array();
  Hist.push(uint64_t(3));
  Hist.push(uint64_t(9));
  Metrics.set("emu.mask_density", std::move(Hist));
  Doc.set("metrics", std::move(Metrics));

  Json Arr = Json::array();
  for (const CellSpec &C : Cells) {
    Json J = Json::object();
    J.set("benchmark", C.Benchmark);
    J.set("variant", C.Variant);
    J.set("generated", C.Generated);
    if (C.Generated) {
      J.set("correct", C.Correct);
      J.set("cycles", C.Cycles);
    }
    Arr.push(std::move(J));
  }
  Doc.set("cells", std::move(Arr));
  return Doc;
}

const std::vector<CellSpec> BaseCells = {
    {"401.bzip2", "scalar", true, true, 2000},
    {"401.bzip2", "flexvec", true, true, 1000},
    {"radix", "flexvec", true, true, 500},
};

obs::BenchDiffReport diff(const Json &Base, const Json &Cur,
                          obs::BenchDiffOptions Opts = {}) {
  return obs::diffBench(Base, Cur, Opts);
}

//===----------------------------------------------------------------------===//
// Library layer
//===----------------------------------------------------------------------===//

TEST(BenchDiff, IdenticalDocumentsPass) {
  Json Doc = makeBench(BaseCells);
  obs::BenchDiffReport R = diff(Doc, Doc);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_TRUE(R.Regressions.empty());
}

TEST(BenchDiff, InjectedFivePercentCycleRegressionFails) {
  // The acceptance fixture: one cell 5% slower must trip the default 2%
  // tolerance.
  std::vector<CellSpec> Slower = BaseCells;
  Slower[1].Cycles = 1050;
  obs::BenchDiffReport R = diff(makeBench(BaseCells), makeBench(Slower));
  EXPECT_EQ(R.ExitCode, 1);
  ASSERT_EQ(R.Regressions.size(), 1u);
  EXPECT_NE(R.Regressions[0].find("401.bzip2/flexvec"), std::string::npos)
      << R.Regressions[0];
  EXPECT_NE(R.Regressions[0].find("+5.00%"), std::string::npos)
      << R.Regressions[0];
}

TEST(BenchDiff, SmallCycleDriftIsANoteNotARegression) {
  std::vector<CellSpec> Slower = BaseCells;
  Slower[1].Cycles = 1010; // +1%, inside the 2% default tolerance.
  obs::BenchDiffReport R = diff(makeBench(BaseCells), makeBench(Slower));
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_FALSE(R.Notes.empty());
}

TEST(BenchDiff, CyclesToleranceIsConfigurable) {
  std::vector<CellSpec> Slower = BaseCells;
  Slower[1].Cycles = 1050;
  obs::BenchDiffOptions Loose;
  Loose.CyclesTolerancePct = 10.0;
  EXPECT_EQ(diff(makeBench(BaseCells), makeBench(Slower), Loose).ExitCode, 0);
  obs::BenchDiffOptions Strict;
  Strict.CyclesTolerancePct = 0.0;
  std::vector<CellSpec> Barely = BaseCells;
  Barely[1].Cycles = 1001;
  EXPECT_EQ(diff(makeBench(BaseCells), makeBench(Barely), Strict).ExitCode, 1);
}

TEST(BenchDiff, SpeedupsAreNotRegressions) {
  std::vector<CellSpec> Faster = BaseCells;
  Faster[1].Cycles = 800; // -20% cycles: an improvement.
  obs::BenchDiffReport R = diff(makeBench(BaseCells), makeBench(Faster));
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(BenchDiff, CorrectnessFlipFails) {
  std::vector<CellSpec> Broken = BaseCells;
  Broken[2].Correct = false;
  obs::BenchDiffReport R = diff(makeBench(BaseCells), makeBench(Broken));
  EXPECT_EQ(R.ExitCode, 1);
  ASSERT_FALSE(R.Regressions.empty());
  EXPECT_NE(R.Regressions[0].find("correctness"), std::string::npos);
}

TEST(BenchDiff, VanishedCellAndLostVariantFail) {
  std::vector<CellSpec> Missing(BaseCells.begin(), BaseCells.end() - 1);
  EXPECT_EQ(diff(makeBench(BaseCells), makeBench(Missing)).ExitCode, 1);

  std::vector<CellSpec> NotGenerated = BaseCells;
  NotGenerated[1].Generated = false;
  EXPECT_EQ(diff(makeBench(BaseCells), makeBench(NotGenerated)).ExitCode, 1);
}

TEST(BenchDiff, NewCellIsANote) {
  std::vector<CellSpec> Extra = BaseCells;
  Extra.push_back({"new.bench", "flexvec", true, true, 700});
  obs::BenchDiffReport R = diff(makeBench(BaseCells), makeBench(Extra));
  EXPECT_EQ(R.ExitCode, 0);
  bool Found = false;
  for (const std::string &N : R.Notes)
    Found |= N.find("new.bench/flexvec") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(BenchDiff, GeomeanDropBeyondToleranceFails) {
  obs::BenchDiffReport R =
      diff(makeBench(BaseCells, /*SpecGeo=*/1.10),
           makeBench(BaseCells, /*SpecGeo=*/1.04)); // -5.5% drop.
  EXPECT_EQ(R.ExitCode, 1);
  // A rise never fails.
  EXPECT_EQ(diff(makeBench(BaseCells, 1.10), makeBench(BaseCells, 1.20))
                .ExitCode,
            0);
}

TEST(BenchDiff, MetricThresholdGatesAggregateGrowth) {
  Json Cur = makeBench(BaseCells);
  // Rebuild with a grown aggregate counter.
  Json Base = makeBench(BaseCells);
  Json Grown = Json::object();
  Grown.set("emu.instructions", uint64_t(6000)); // +20% over 5000.
  Cur.set("metrics", std::move(Grown));

  // Untracked drift: informational only.
  EXPECT_EQ(diff(Base, Cur).ExitCode, 0);

  obs::BenchDiffOptions Opts;
  Opts.MetricThresholds.emplace_back("emu.instructions", 10.0);
  obs::BenchDiffReport R = diff(Base, Cur, Opts);
  EXPECT_EQ(R.ExitCode, 1);
  ASSERT_FALSE(R.Regressions.empty());
  EXPECT_NE(R.Regressions[0].find("emu.instructions"), std::string::npos);
}

TEST(BenchDiff, SchemaMismatchIsNotComparable) {
  obs::BenchDiffReport R =
      diff(makeBench(BaseCells),
           makeBench(BaseCells, 1.10, 1.12, "flexvec-bench-figure8/v1"));
  EXPECT_EQ(R.ExitCode, 2);
}

TEST(BenchDiff, DifferentSweepConfigurationIsNotComparable) {
  Json Base = makeBench(BaseCells);
  Json Cur = makeBench(BaseCells);
  Cur.set("seed", uint64_t(2));
  EXPECT_EQ(diff(Base, Cur).ExitCode, 2);
  Json Cur2 = makeBench(BaseCells);
  Cur2.set("scale", 0.5);
  EXPECT_EQ(diff(Base, Cur2).ExitCode, 2);
}

TEST(BenchDiff, DifferentVectorLengthIsNotComparable) {
  // Payloads produced at different VLs are different experiments: exit 2
  // (config mismatch), never spurious per-cell regressions.
  Json Base = makeBench(BaseCells);
  Json Cur = makeBench(BaseCells);
  Cur.set("vl", uint64_t(256));
  obs::BenchDiffReport R = diff(Base, Cur);
  EXPECT_EQ(R.ExitCode, 2);
  ASSERT_FALSE(R.Regressions.empty());
  EXPECT_NE(R.Regressions[0].find("vl"), std::string::npos)
      << R.Regressions[0];

  // An absent key means the 512-bit default, so spelling it out is not a
  // mismatch — old baselines stay comparable with current default runs.
  Json Cur512 = makeBench(BaseCells);
  Cur512.set("vl", uint64_t(512));
  EXPECT_EQ(diff(Base, Cur512).ExitCode, 0);

  // Two non-default documents at the same width compare normally.
  Json Base256 = makeBench(BaseCells);
  Base256.set("vl", uint64_t(256));
  EXPECT_EQ(diff(Base256, Cur).ExitCode, 0);
}

//===----------------------------------------------------------------------===//
// Binary layer: the CI bench-gate invocation path
//===----------------------------------------------------------------------===//

struct CmdResult {
  int Exit = -1;
  std::string Output; ///< stdout + stderr, interleaved.
};

CmdResult run(const std::string &Cmd) {
  CmdResult R;
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(P);
  if (WIFEXITED(Status))
    R.Exit = WEXITSTATUS(Status);
  return R;
}

const std::string BenchDiffBin = FLEXVEC_BENCHDIFF_PATH;

std::string writeTemp(const char *Name, const Json &Doc) {
  std::string Path = std::string("benchdiff_test_") + Name + ".json";
  std::ofstream Out(Path);
  Out << Doc.dump();
  return Path;
}

class BenchDiffBinary : public ::testing::Test {
protected:
  void TearDown() override {
    for (const std::string &P : Written)
      std::remove(P.c_str());
  }
  std::string file(const char *Name, const Json &Doc) {
    Written.push_back(writeTemp(Name, Doc));
    return Written.back();
  }
  std::vector<std::string> Written;
};

TEST_F(BenchDiffBinary, IdenticalFilesExitZero) {
  std::string A = file("base", makeBench(BaseCells));
  CmdResult R = run(BenchDiffBin + " " + A + " " + A);
  EXPECT_EQ(R.Exit, 0) << R.Output;
  EXPECT_NE(R.Output.find("no regression"), std::string::npos) << R.Output;
}

TEST_F(BenchDiffBinary, InjectedRegressionExitsOne) {
  std::vector<CellSpec> Slower = BaseCells;
  Slower[1].Cycles = 1050; // The injected 5% regression fixture.
  std::string A = file("base", makeBench(BaseCells));
  std::string B = file("reg", makeBench(Slower));
  CmdResult R = run(BenchDiffBin + " " + A + " " + B);
  EXPECT_EQ(R.Exit, 1) << R.Output;
  EXPECT_NE(R.Output.find("REGRESSION"), std::string::npos) << R.Output;
}

TEST_F(BenchDiffBinary, SchemaMismatchExitsTwo) {
  std::string A = file("base", makeBench(BaseCells));
  std::string B = file(
      "v1", makeBench(BaseCells, 1.10, 1.12, "flexvec-bench-figure8/v1"));
  CmdResult R = run(BenchDiffBin + " " + A + " " + B);
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("schema"), std::string::npos) << R.Output;
}

TEST_F(BenchDiffBinary, VectorLengthMismatchExitsTwo) {
  Json Wide = makeBench(BaseCells);
  Wide.set("vl", uint64_t(1024));
  std::string A = file("base", makeBench(BaseCells));
  std::string B = file("vl1024", Wide);
  CmdResult R = run(BenchDiffBin + " " + A + " " + B);
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("vl"), std::string::npos) << R.Output;
  EXPECT_EQ(R.Output.find("REGRESSION"), std::string::npos)
      << "a VL mismatch must not be reported as a regression:\n" << R.Output;
}

TEST_F(BenchDiffBinary, UnreadableAndMalformedInputsExitTwo) {
  std::string A = file("base", makeBench(BaseCells));
  CmdResult Missing = run(BenchDiffBin + " " + A + " /nonexistent/cur.json");
  EXPECT_EQ(Missing.Exit, 2) << Missing.Output;

  std::string Bad = "benchdiff_test_bad.json";
  Written.push_back(Bad);
  std::ofstream(Bad) << "{ not json";
  CmdResult Malformed = run(BenchDiffBin + " " + A + " " + Bad);
  EXPECT_EQ(Malformed.Exit, 2) << Malformed.Output;
  EXPECT_NE(Malformed.Output.find("offset"), std::string::npos)
      << "parse errors must carry a byte offset:\n" << Malformed.Output;
}

TEST_F(BenchDiffBinary, BadUsageExitsTwoWithUsage) {
  CmdResult R = run(BenchDiffBin + " only_one.json");
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Output.find("usage:"), std::string::npos) << R.Output;
  CmdResult Unknown = run(BenchDiffBin + " --bogus a.json b.json");
  EXPECT_EQ(Unknown.Exit, 2);
  CmdResult BadTol =
      run(BenchDiffBin + " --cycles-tolerance=x a.json b.json");
  EXPECT_EQ(BadTol.Exit, 2);
}

TEST_F(BenchDiffBinary, ToleranceFlagsReachTheDiffer) {
  std::vector<CellSpec> Slower = BaseCells;
  Slower[1].Cycles = 1050;
  std::string A = file("base", makeBench(BaseCells));
  std::string B = file("reg", makeBench(Slower));
  CmdResult Loose =
      run(BenchDiffBin + " --cycles-tolerance=10 " + A + " " + B);
  EXPECT_EQ(Loose.Exit, 0) << Loose.Output;

  CmdResult Thresh = run(BenchDiffBin +
                         " --cycles-tolerance=10 "
                         "--metric-threshold=emu.instructions=0 " +
                         A + " " + B);
  EXPECT_EQ(Thresh.Exit, 0)
      << "equal aggregate metrics must pass a 0% threshold:\n"
      << Thresh.Output;
}

} // namespace
