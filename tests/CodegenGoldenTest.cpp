//===- tests/CodegenGoldenTest.cpp - Golden-file codegen regression --------===//
//
// Pins the exact generated code for the three flagship example loops
// (examples/loops/{argmin,find_first,histogram}.fv) across all five
// variants against checked-in golden files in tests/golden/. Any codegen
// change — instruction selection, scheduling, register allocation, notes —
// shows up as a readable diff instead of a silent perf shift.
//
// To regenerate after an intentional change:
//
//   FLEXVEC_UPDATE_GOLDEN=1 ./build/tests/codegen_golden_test
//
// then review the diff of tests/golden/*.golden like any other code change.
//
//===----------------------------------------------------------------------===//

#include "core/ParallelEvaluator.h"
#include "core/Pipeline.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace flexvec;

namespace {

std::string readFile(const std::string &Path, bool *Ok = nullptr) {
  std::ifstream In(Path);
  if (Ok)
    *Ok = In.good();
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Renders the full five-variant compilation of one loop as stable text.
/// The goldens freeze the 512-bit artifacts, so the width is pinned here:
/// a FLEXVEC_VL override (the CI width leg) must not reinterpret them.
std::string renderGolden(const ir::LoopFunction &F) {
  driver::DriverOptions Opts;
  Opts.RtmTile = 64;
  Opts.Vec = isa::VectorConfig();
  core::PipelineResult PR = driver::compileLoop(F, Opts);
  std::ostringstream Out;
  Out << "# Golden compilation of '" << F.name() << "'. Regenerate with\n"
      << "#   FLEXVEC_UPDATE_GOLDEN=1 ./build/tests/codegen_golden_test\n"
      << "# after reviewing an intentional codegen change.\n\n";
  Out << "plan: " << (PR.Plan.Vectorizable ? "vectorizable" : "rejected")
      << "\n\n";
  for (unsigned V = 0; V < core::NumVariants; ++V) {
    core::VariantId Id = static_cast<core::VariantId>(V);
    Out << "== " << core::variantName(Id) << " ==\n";
    const codegen::CompiledLoop *CL = core::selectVariant(PR, Id);
    if (!CL) {
      Out << "(not generated)\n\n";
      continue;
    }
    if (!CL->Notes.empty())
      Out << "; " << CL->Notes << "\n";
    Out << CL->Prog.disassemble() << "\n";
  }
  return Out.str();
}

/// Points at the first differing line so CI logs read like a diff hunk.
void expectGoldenEq(const std::string &Golden, const std::string &Actual,
                    const std::string &GoldenPath) {
  if (Golden == Actual)
    return;
  std::istringstream G(Golden), A(Actual);
  std::string GLine, ALine;
  int Line = 1;
  while (true) {
    bool HasG = static_cast<bool>(std::getline(G, GLine));
    bool HasA = static_cast<bool>(std::getline(A, ALine));
    if (!HasG && !HasA)
      break;
    if (!HasG || !HasA || GLine != ALine) {
      FAIL() << GoldenPath << ":" << Line << ": first difference\n"
             << "  golden: " << (HasG ? GLine : "<eof>") << "\n"
             << "  actual: " << (HasA ? ALine : "<eof>") << "\n"
             << "regenerate with FLEXVEC_UPDATE_GOLDEN=1 if intentional";
      return;
    }
    ++Line;
  }
  FAIL() << GoldenPath << ": contents differ (line-by-line scan found no "
            "difference; check trailing whitespace)";
}

class CodegenGolden : public ::testing::TestWithParam<const char *> {};

TEST_P(CodegenGolden, MatchesCheckedInFile) {
  std::string Name = GetParam();
  std::string LoopPath =
      std::string(FLEXVEC_SOURCE_DIR) + "/examples/loops/" + Name + ".fv";
  std::string GoldenPath =
      std::string(FLEXVEC_SOURCE_DIR) + "/tests/golden/" + Name + ".golden";

  bool Ok = false;
  std::string Source = readFile(LoopPath, &Ok);
  ASSERT_TRUE(Ok) << "cannot read " << LoopPath;
  ir::ParseResult P = ir::parseLoop(Source);
  ASSERT_TRUE(P) << LoopPath << ": " << P.Error;

  std::string Actual = renderGolden(*P.F);

  if (std::getenv("FLEXVEC_UPDATE_GOLDEN")) {
    std::ofstream Out(GoldenPath);
    ASSERT_TRUE(Out.good()) << "cannot write " << GoldenPath;
    Out << Actual;
    GTEST_SKIP() << "regenerated " << GoldenPath;
  }

  std::string Golden = readFile(GoldenPath, &Ok);
  ASSERT_TRUE(Ok) << "missing golden file " << GoldenPath
                  << " (generate with FLEXVEC_UPDATE_GOLDEN=1)";
  expectGoldenEq(Golden, Actual, GoldenPath);
}

INSTANTIATE_TEST_SUITE_P(ExampleLoops, CodegenGolden,
                         ::testing::Values("argmin", "find_first",
                                           "histogram"));

} // namespace
