//===- tests/EmuTest.cpp - Functional emulator unit tests ------------------===//

#include "emu/Machine.h"
#include "isa/Program.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::isa;
using namespace flexvec::emu;

namespace {

class EmuTest : public ::testing::Test {
protected:
  mem::Memory M;
  Machine Mach{M};

  ExecResult run(ProgramBuilder &B) { return Mach.run(B.finalize()); }
};

} // namespace

TEST_F(EmuTest, ScalarArithmetic) {
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 10);
  B.movImm(Reg::scalar(2), 3);
  B.binOp(Opcode::Sub, Reg::scalar(3), Reg::scalar(1), Reg::scalar(2));
  B.binOp(Opcode::Mul, Reg::scalar(4), Reg::scalar(3), Reg::scalar(3));
  B.binOpImm(Opcode::ShlImm, Reg::scalar(5), Reg::scalar(1), 3);
  B.binOp(Opcode::Min, Reg::scalar(6), Reg::scalar(1), Reg::scalar(2));
  B.halt();
  ASSERT_EQ(run(B).Reason, StopReason::Halted);
  EXPECT_EQ(Mach.getScalar(3), 7);
  EXPECT_EQ(Mach.getScalar(4), 49);
  EXPECT_EQ(Mach.getScalar(5), 80);
  EXPECT_EQ(Mach.getScalar(6), 3);
}

TEST_F(EmuTest, ScalarFloat64) {
  ProgramBuilder B;
  B.fmovImm(Reg::scalar(1), ElemType::F64, 1.5);
  B.fmovImm(Reg::scalar(2), ElemType::F64, 2.25);
  B.fbinOp(Opcode::FMul, ElemType::F64, Reg::scalar(3), Reg::scalar(1),
           Reg::scalar(2));
  B.fcmp(Reg::scalar(4), CmpKind::LT, ElemType::F64, Reg::scalar(1),
         Reg::scalar(2));
  B.halt();
  run(B);
  EXPECT_DOUBLE_EQ(Mach.getScalarF64(3), 3.375);
  EXPECT_EQ(Mach.getScalar(4), 1);
}

TEST_F(EmuTest, ScalarFloat32UsesSinglePrecision) {
  ProgramBuilder B;
  B.fmovImm(Reg::scalar(1), ElemType::F32, 16777216.0); // 2^24
  B.fmovImm(Reg::scalar(2), ElemType::F32, 1.0);
  B.fbinOp(Opcode::FAdd, ElemType::F32, Reg::scalar(3), Reg::scalar(1),
           Reg::scalar(2));
  B.halt();
  run(B);
  EXPECT_EQ(Mach.getScalarF32(3), 16777216.0f);
}

TEST_F(EmuTest, BranchesAndLoop) {
  // Sum 0..9 with a scalar loop.
  ProgramBuilder B;
  auto Header = B.createLabel();
  auto Exit = B.createLabel();
  B.movImm(Reg::scalar(1), 0);  // i
  B.movImm(Reg::scalar(2), 0);  // sum
  B.bind(Header);
  B.cmpImm(Reg::scalar(3), CmpKind::LT, Reg::scalar(1), 10);
  B.brZero(Reg::scalar(3), Exit);
  B.binOp(Opcode::Add, Reg::scalar(2), Reg::scalar(2), Reg::scalar(1));
  B.binOpImm(Opcode::AddImm, Reg::scalar(1), Reg::scalar(1), 1);
  B.jmp(Header);
  B.bind(Exit);
  B.halt();
  ExecResult R = run(B);
  EXPECT_EQ(Mach.getScalar(2), 45);
  EXPECT_EQ(R.Stats.Branches, 21u); // 11 brz + 10 jmp.
  EXPECT_EQ(R.Stats.TakenBranches, 11u);
}

TEST_F(EmuTest, LoadSignExtendsI32) {
  M.map(0x1000, 64);
  M.set<int32_t>(0x1000, -5);
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 0x1000);
  B.load(Reg::scalar(2), ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0);
  B.halt();
  run(B);
  EXPECT_EQ(Mach.getScalar(2), -5);
}

TEST_F(EmuTest, UnhandledFaultStopsExecution) {
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 0x50000);
  B.load(Reg::scalar(2), ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0);
  B.halt();
  ExecResult R = run(B);
  EXPECT_EQ(R.Reason, StopReason::Fault);
  EXPECT_EQ(R.FaultAddr, 0x50000u);
}

TEST_F(EmuTest, BudgetWatchdogStopsRunawayLoops) {
  ProgramBuilder B;
  auto L = B.createLabel();
  B.bind(L);
  B.jmp(L);
  Program P = B.finalize();
  RunLimits Limits;
  Limits.MaxInstructions = 1000;
  ExecResult R = Mach.run(P, Limits);
  EXPECT_EQ(R.Reason, StopReason::BudgetExceeded);
  EXPECT_EQ(R.Stats.Instructions, 1000u);
  // The watchdog reports where the runaway loop was spinning.
  EXPECT_EQ(R.FaultPC, 0u);
  EXPECT_EQ(R.FaultOp, Opcode::Jmp);
}

TEST_F(EmuTest, VectorIndexCompareAndReduce) {
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 100);
  B.vindex(Reg::vector(1), ElemType::I32, Reg::scalar(1)); // 100..115
  B.vcmpImm(Reg::mask(1), CmpKind::LT, ElemType::I32, Reg::vector(1), 108);
  B.kpopcnt(Reg::scalar(2), Reg::mask(1));
  B.movImm(Reg::scalar(3), 0);
  B.vreduce(Opcode::VReduceAdd, ElemType::I32, Reg::scalar(4), Reg::mask(1),
            Reg::vector(1), Reg::scalar(3));
  B.halt();
  run(B);
  EXPECT_EQ(Mach.getScalar(2), 8);
  EXPECT_EQ(Mach.getScalar(4), 100 + 101 + 102 + 103 + 104 + 105 + 106 + 107);
}

TEST_F(EmuTest, VectorLoadStoreRoundTrip) {
  M.map(0x1000, 256);
  for (int I = 0; I < 16; ++I)
    M.set<int32_t>(0x1000 + static_cast<uint64_t>(I) * 4, I * 3);
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 0x1000);
  B.movImm(Reg::scalar(2), 0x1080);
  B.vload(Reg::vector(1), ElemType::I32, Reg::none(), Reg::scalar(1),
          Reg::none(), 1, 0);
  B.vbinOpImm(Opcode::VAddImm, ElemType::I32, Reg::vector(2), Reg::vector(1),
              1000);
  B.vstore(ElemType::I32, Reg::none(), Reg::scalar(2), Reg::none(), 1, 0,
           Reg::vector(2));
  B.halt();
  ASSERT_EQ(run(B).Reason, StopReason::Halted);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(M.get<int32_t>(0x1080 + static_cast<uint64_t>(I) * 4),
              I * 3 + 1000);
}

TEST_F(EmuTest, GatherWithScaleAndDisp) {
  M.map(0x1000, 4096);
  for (int I = 0; I < 64; ++I)
    M.set<int32_t>(0x1000 + static_cast<uint64_t>(I) * 4, 1000 + I);
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 0x1000);
  B.movImm(Reg::scalar(2), 2);
  B.vindex(Reg::vector(1), ElemType::I32, Reg::scalar(2)); // indices 2..17
  B.vgather(Reg::vector(2), ElemType::I32, Reg::none(), Reg::scalar(1),
            Reg::vector(1), 4, /*Disp=*/8);
  B.halt();
  run(B);
  // Element = base + idx*4 + 8 → value 1000 + idx + 2.
  for (unsigned L = 0; L < 16; ++L)
    EXPECT_EQ(Mach.getVector(2).laneInt(ElemType::I32, L),
              1000 + 2 + static_cast<int>(L) + 2);
}

TEST_F(EmuTest, FirstFaultingLoadClipsMaskAtGuardPage) {
  // One page of data followed by the BumpAllocator's unmapped guard page.
  mem::BumpAllocator Alloc(M);
  std::vector<int32_t> Data(1024);
  for (int I = 0; I < 1024; ++I)
    Data[I] = I;
  uint64_t Base = Alloc.allocArray(Data);
  // Start 8 elements before the guard page: lanes 0..7 are mapped, lane 8
  // lands exactly on the guard page.
  uint64_t Start = Base + 1024 * 4 - 8 * 4;
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), static_cast<int64_t>(Start));
  B.kset(Reg::mask(1), 0xFFFF);
  B.vmovff(Reg::vector(1), ElemType::I32, Reg::mask(1), Reg::scalar(1),
           Reg::none(), 1, 0);
  B.halt();
  ExecResult R = run(B);
  ASSERT_EQ(R.Reason, StopReason::Halted)
      << "a speculative-lane fault must not surface architecturally";
  EXPECT_EQ(Mach.getMask(1), 0xFFu)
      << "write mask clipped from the faulting lane rightward";
  for (unsigned L = 0; L < 8; ++L)
    EXPECT_EQ(Mach.getVector(1).laneInt(ElemType::I32, L),
              1016 + static_cast<int>(L));
}

TEST_F(EmuTest, FirstFaultingGatherClipsMaskAtGuardPage) {
  mem::BumpAllocator Alloc(M);
  std::vector<int32_t> Tab(1024);
  for (int I = 0; I < 1024; ++I)
    Tab[I] = 2 * I;
  uint64_t Base = Alloc.allocArray(Tab);
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), static_cast<int64_t>(Base));
  B.movImm(Reg::scalar(2), 1020); // Indices 1020..1035 run off the table.
  B.vindex(Reg::vector(1), ElemType::I32, Reg::scalar(2));
  B.kset(Reg::mask(1), 0xFFFF);
  B.vgatherff(Reg::vector(2), ElemType::I32, Reg::mask(1), Reg::scalar(1),
              Reg::vector(1), 4, 0);
  B.halt();
  ExecResult R = run(B);
  ASSERT_EQ(R.Reason, StopReason::Halted);
  EXPECT_EQ(Mach.getMask(1), 0xFu)
      << "only the in-bounds indices 1020..1023 survive";
  for (unsigned L = 0; L < 4; ++L)
    EXPECT_EQ(Mach.getVector(2).laneInt(ElemType::I32, L),
              2 * (1020 + static_cast<int>(L)));
}

TEST_F(EmuTest, FirstFaultingLeftmostLaneFaultsArchitecturally) {
  // The leftmost *enabled* lane is non-speculative (paper Section 3.3.1):
  // lanes 0..7 are disabled, lane 8 points into the guard page, so the
  // fault is architectural even though earlier addresses are mapped.
  mem::BumpAllocator Alloc(M);
  std::vector<int32_t> Data(1024, 5);
  uint64_t Base = Alloc.allocArray(Data);
  uint64_t Start = Base + 1024 * 4 - 8 * 4;
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), static_cast<int64_t>(Start));
  B.kset(Reg::mask(1), 0xFF00); // Leftmost enabled lane is lane 8.
  B.vmovff(Reg::vector(1), ElemType::I32, Reg::mask(1), Reg::scalar(1),
           Reg::none(), 1, 0);
  B.halt();
  ExecResult R = run(B);
  EXPECT_EQ(R.Reason, StopReason::Fault);
  EXPECT_EQ(R.FaultAddr, Start + 8 * 4);
  EXPECT_EQ(R.FaultPC, 2u);
  EXPECT_EQ(R.FaultOp, Opcode::VMovFF);
}

TEST_F(EmuTest, RtmAbortRestoresRegistersAndMemory) {
  M.map(0x1000, 4096);
  M.set<int32_t>(0x1000, 5);
  ProgramBuilder B;
  auto Abort = B.createLabel();
  auto Done = B.createLabel();
  B.movImm(Reg::scalar(1), 0x1000);
  B.movImm(Reg::scalar(2), 111); // Will be rolled back to 111.
  B.xbegin(Abort);
  B.movImm(Reg::scalar(2), 222);
  B.movImm(Reg::scalar(3), 999);
  B.store(ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0, Reg::scalar(3));
  B.xabort();
  B.bind(Abort);
  B.movImm(Reg::scalar(4), 1); // Abort path marker.
  B.bind(Done);
  B.halt();
  ASSERT_EQ(run(B).Reason, StopReason::Halted);
  EXPECT_EQ(Mach.getScalar(2), 111) << "register rollback";
  EXPECT_EQ(Mach.getScalar(4), 1) << "control reached the abort handler";
  EXPECT_EQ(M.get<int32_t>(0x1000), 5) << "memory rollback";
}

TEST_F(EmuTest, RtmCommitKeepsWrites) {
  M.map(0x1000, 4096);
  ProgramBuilder B;
  auto Abort = B.createLabel();
  B.movImm(Reg::scalar(1), 0x1000);
  B.xbegin(Abort);
  B.movImm(Reg::scalar(3), 42);
  B.store(ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0, Reg::scalar(3));
  B.xend();
  B.bind(Abort); // Fallthrough target; never taken here.
  B.halt();
  ASSERT_EQ(run(B).Reason, StopReason::Halted);
  EXPECT_EQ(M.get<int32_t>(0x1000), 42);
}

TEST_F(EmuTest, RtmFaultInsideTransactionTransfersToHandler) {
  M.map(0x1000, 4096);
  ProgramBuilder B;
  auto Abort = B.createLabel();
  auto Done = B.createLabel();
  B.movImm(Reg::scalar(1), 0x900000); // Unmapped.
  B.xbegin(Abort);
  B.load(Reg::scalar(2), ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0);
  B.xend();
  B.jmp(Done);
  B.bind(Abort);
  B.movImm(Reg::scalar(4), 7);
  B.bind(Done);
  B.halt();
  ExecResult R = run(B);
  EXPECT_EQ(R.Reason, StopReason::Halted)
      << "a fault inside a transaction aborts instead of faulting";
  EXPECT_EQ(Mach.getScalar(4), 7);
}

TEST_F(EmuTest, OpcodeCountsTrackMix) {
  ProgramBuilder B;
  B.kset(Reg::mask(1), 0xFF);
  B.kftmExc(Reg::mask(2), ElemType::I32, Reg::mask(1), Reg::mask(1));
  B.kftmInc(Reg::mask(3), ElemType::I32, Reg::mask(1), Reg::mask(1));
  B.halt();
  ExecResult R = run(B);
  EXPECT_EQ(R.Stats.countOf(Opcode::KFtmExc), 1u);
  EXPECT_EQ(R.Stats.countOf(Opcode::KFtmInc), 1u);
  EXPECT_EQ(R.Stats.countOf(Opcode::KSet), 1u);
}
