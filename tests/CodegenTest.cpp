//===- tests/CodegenTest.cpp - Code generator unit tests -------------------===//
//
// Generator-level checks that the end-to-end suites do not cover:
// traditional vectorization of legal loops (reductions, if-conversion),
// 64-bit lanes (VL = 8), disassembly round-trips of the structural
// markers, and the calling convention.
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "workloads/PaperLoops.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::ir;
using isa::CmpKind;
using isa::ElemType;
using isa::Opcode;

namespace {

/// Builds:  for i < n: if (a[i] > t) s = s + a[i]*2;   (guarded sum).
std::unique_ptr<LoopFunction> buildGuardedSum(ElemType Ty) {
  auto F = std::make_unique<LoopFunction>("guarded_sum");
  int N = F->addScalar("n", ElemType::I64);
  int S = F->addScalar("s", Ty, /*IsLiveOut=*/true);
  int T = F->addScalar("t", Ty);
  int A = F->addArray("a", Ty, true);
  F->setTripCountScalar(N);
  Stmt *Guard = F->makeIfShell(
      F->compare(CmpKind::GT, F->arrayRef(A, F->indexRef()),
                 F->scalarRef(T)));
  const Expr *Two = isFloatType(Ty) ? F->constFloat(Ty, 2.0)
                                    : F->constInt(Ty, 2);
  F->addThen(Guard,
             F->assignScalar(
                 S, F->binary(BinOp::Add, F->scalarRef(S),
                              F->binary(BinOp::Mul,
                                        F->arrayRef(A, F->indexRef()), Two))));
  F->setBody({Guard});
  return F;
}

} // namespace

TEST(Codegen, TraditionalVectorizesGuardedSum) {
  auto F = buildGuardedSum(ElemType::I32);
  core::PipelineResult PR = core::compileLoop(*F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  EXPECT_FALSE(PR.Plan.needsFlexVec());
  ASSERT_TRUE(PR.Traditional.has_value());
  EXPECT_TRUE(PR.Traditional->Prog.usesOpcode(Opcode::VReduceAdd));
  EXPECT_FALSE(PR.Traditional->Prog.usesOpcode(Opcode::KFtmInc));

  // Correctness over random inputs.
  Rng R(11);
  for (int Case = 0; Case < 20; ++Case) {
    int64_t N = 1 + static_cast<int64_t>(R.nextBelow(300));
    mem::Memory M;
    mem::BumpAllocator Alloc(M);
    std::vector<int32_t> Data(static_cast<size_t>(N));
    for (auto &V : Data)
      V = static_cast<int32_t>(R.nextInRange(-100, 100));
    Bindings B = Bindings::forFunction(*F);
    B.ArrayBases[0] = Alloc.allocArray(Data);
    B.setInt(0, N);
    B.setInt(1, 7);  // s initial
    B.setInt(2, 10); // threshold
    core::RunOutcome Ref = core::runReference(*F, M, B);
    core::RunOutcome Trad = core::runProgram(*PR.Traditional, M, B);
    core::RunOutcome Scal = core::runProgram(PR.Scalar, M, B);
    ASSERT_TRUE(core::outcomesMatch(*F, Ref, Trad)) << "case " << Case;
    ASSERT_TRUE(core::outcomesMatch(*F, Ref, Scal)) << "case " << Case;
  }
}

TEST(Codegen, WideLanes64BitConflictLoop) {
  // A 64-bit-element conflict loop exercises VL = 8 lane configuration.
  LoopFunction F("conflict64");
  int N = F.addScalar("n", ElemType::I64);
  int J = F.addScalar("j", ElemType::I64);
  int Idx = F.addArray("idx", ElemType::I64, true);
  int D = F.addArray("d", ElemType::I64);
  F.setTripCountScalar(N);
  std::vector<Stmt *> Body;
  Body.push_back(F.assignScalar(J, F.arrayRef(Idx, F.indexRef())));
  const Expr *JRef = F.scalarRef(J);
  Body.push_back(F.storeArray(
      D, JRef,
      F.binary(BinOp::Add, F.arrayRef(D, JRef), F.constInt(ElemType::I64, 1))));
  F.setBody(Body);

  core::PipelineResult PR = core::compileLoop(F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  ASSERT_EQ(PR.Plan.MemConflictVpls.size(), 1u);
  ASSERT_TRUE(PR.FlexVec.has_value());
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(Opcode::VConflictM));

  Rng R(13);
  for (int Case = 0; Case < 10; ++Case) {
    int64_t Trip = 1 + static_cast<int64_t>(R.nextBelow(200));
    mem::Memory M;
    mem::BumpAllocator Alloc(M);
    std::vector<int64_t> IdxData(static_cast<size_t>(Trip));
    for (auto &V : IdxData)
      V = static_cast<int64_t>(R.nextBelow(32)); // Dense: many conflicts.
    std::vector<int64_t> DData(32, 0);
    Bindings B = Bindings::forFunction(F);
    B.ArrayBases[0] = Alloc.allocArray(IdxData);
    B.ArrayBases[1] = Alloc.allocArray(DData);
    B.setInt(0, Trip);
    core::RunOutcome Ref = core::runReference(F, M, B);
    core::RunOutcome Flex = core::runProgram(*PR.FlexVec, M, B);
    ASSERT_TRUE(core::outcomesMatch(F, Ref, Flex)) << "case " << Case;
    core::RunOutcome Rtm = core::runProgram(*PR.Rtm, M, B);
    ASSERT_TRUE(core::outcomesMatch(F, Ref, Rtm)) << "case " << Case;
  }
}

TEST(Codegen, WideLanes64BitArgmin) {
  LoopFunction F("argmin64");
  int N = F.addScalar("n", ElemType::I64);
  int Best = F.addScalar("best", ElemType::I64, /*IsLiveOut=*/true);
  int BestIdx = F.addScalar("best_idx", ElemType::I64, /*IsLiveOut=*/true);
  int A = F.addArray("a", ElemType::I64, true);
  F.setTripCountScalar(N);
  Stmt *Guard = F.makeIfShell(F.compare(
      CmpKind::LT, F.arrayRef(A, F.indexRef()), F.scalarRef(Best)));
  F.addThen(Guard, F.assignScalar(Best, F.arrayRef(A, F.indexRef())));
  F.addThen(Guard, F.assignScalar(BestIdx, F.indexRef()));
  F.setBody({Guard});

  core::PipelineResult PR = core::compileLoop(F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  ASSERT_EQ(PR.Plan.CondUpdateVpls.size(), 1u);

  Rng R(17);
  for (int Case = 0; Case < 10; ++Case) {
    int64_t Trip = 1 + static_cast<int64_t>(R.nextBelow(200));
    mem::Memory M;
    mem::BumpAllocator Alloc(M);
    std::vector<int64_t> Data(static_cast<size_t>(Trip));
    for (auto &V : Data)
      V = R.nextInRange(-1000000, 1000000);
    Bindings B = Bindings::forFunction(F);
    B.ArrayBases[0] = Alloc.allocArray(Data);
    B.setInt(0, Trip);
    B.setInt(1, 1 << 30);
    B.setInt(2, -1);
    core::RunOutcome Ref = core::runReference(F, M, B);
    core::RunOutcome Flex = core::runProgram(*PR.FlexVec, M, B);
    ASSERT_TRUE(core::outcomesMatch(F, Ref, Flex)) << "case " << Case;
  }
}

TEST(Codegen, DisassemblyCarriesStatementComments) {
  auto F = workloads::buildConflictLoop();
  core::PipelineResult PR = core::compileLoop(*F);
  std::string Asm = PR.FlexVec->Prog.disassemble();
  EXPECT_NE(Asm.find("k_todo"), std::string::npos);
  EXPECT_NE(Asm.find("k_safe"), std::string::npos);
  EXPECT_NE(Asm.find("d_arr[coord] = s"), std::string::npos);
  std::string ScalarAsm = PR.Scalar.Prog.disassemble();
  EXPECT_NE(ScalarAsm.find("scalar loop header"), std::string::npos);
}

TEST(Codegen, EmptyTripCountRunsZeroIterations) {
  auto F = workloads::buildH264Loop();
  core::PipelineResult PR = core::compileLoop(*F);
  Rng R(3);
  workloads::LoopInputs In = workloads::genH264Inputs(*F, R, 16, 0.1);
  In.B.setInt(0, 0); // max_pos = 0.
  core::RunOutcome Ref = core::runReference(*F, In.Image, In.B);
  for (const codegen::CompiledLoop *CL :
       {&PR.Scalar, &*PR.FlexVec, &*PR.Rtm}) {
    core::RunOutcome Out = core::runProgram(*CL, In.Image, In.B);
    EXPECT_TRUE(core::outcomesMatch(*F, Ref, Out));
  }
}

TEST(Codegen, TripCountBelowOneVector) {
  // Partial first (and only) chunk: tail masking must handle trip < VL.
  auto F = workloads::buildConflictLoop();
  core::PipelineResult PR = core::compileLoop(*F);
  for (int64_t Trip : {1, 2, 7, 15, 16, 17}) {
    Rng R(static_cast<uint64_t>(Trip));
    workloads::LoopInputs In =
        workloads::genConflictInputs(*F, R, Trip, 0.5, 64);
    core::RunOutcome Ref = core::runReference(*F, In.Image, In.B);
    core::RunOutcome Flex = core::runProgram(*PR.FlexVec, In.Image, In.B);
    EXPECT_TRUE(core::outcomesMatch(*F, Ref, Flex)) << "trip " << Trip;
  }
}

TEST(Codegen, SpeculativeGeneratorDeclinesUnsupportedShapes) {
  // The Figure 2 conflict loop computes its indices from loads *before*
  // the conflict region; the speculative baseline supports it. A loop
  // whose exit guard is nested is declined.
  auto F = workloads::buildConflictLoop();
  core::PipelineResult PR = core::compileLoop(*F);
  EXPECT_TRUE(PR.Speculative.has_value());
}

TEST(Codegen, NotesDescribeTheBuild) {
  auto F = workloads::buildH264Loop();
  // "VL=16" is the 512-bit / 4-byte-lane count: pin the width so a
  // FLEXVEC_VL override doesn't change the expected notes text.
  driver::DriverOptions DOpts;
  DOpts.RtmTile = 256;
  DOpts.Vec = isa::VectorConfig();
  core::PipelineResult PR = driver::compileLoop(*F, DOpts);
  EXPECT_NE(PR.FlexVec->Notes.find("VL=16"), std::string::npos);
  EXPECT_NE(PR.Rtm->Notes.find("tile=256"), std::string::npos);
  EXPECT_EQ(PR.FlexVec->Kind, codegen::CodeGenKind::FlexVec);
  EXPECT_EQ(PR.Rtm->Kind, codegen::CodeGenKind::FlexVecRtm);
}
