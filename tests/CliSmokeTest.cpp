//===- tests/CliSmokeTest.cpp - Driver binary smoke tests ------------------===//
//
// Runs the installed flexvec-cli and flexvec-bench binaries as a user
// would and checks the argument-parsing contract: unknown flags and
// malformed values exit with status 2 and print a usage hint, valid
// invocations exit 0. Binary paths come from CMake ($<TARGET_FILE:...>).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>

namespace {

struct CmdResult {
  int Exit = -1;
  std::string Output; ///< stdout + stderr, interleaved.
};

CmdResult run(const std::string &Cmd) {
  CmdResult R;
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(P);
  if (WIFEXITED(Status))
    R.Exit = WEXITSTATUS(Status);
  return R;
}

const std::string Cli = FLEXVEC_CLI_PATH;
const std::string Bench = FLEXVEC_BENCH_PATH;
const std::string Argmin =
    std::string(FLEXVEC_SOURCE_DIR) + "/examples/loops/argmin.fv";

void expectRejected(const std::string &Cmd, const std::string &Needle) {
  CmdResult R = run(Cmd);
  EXPECT_EQ(R.Exit, 2) << Cmd << "\n" << R.Output;
  EXPECT_NE(R.Output.find(Needle), std::string::npos)
      << Cmd << ": expected '" << Needle << "' in:\n" << R.Output;
  EXPECT_NE(R.Output.find("usage:"), std::string::npos)
      << Cmd << ": expected a usage hint in:\n" << R.Output;
}

TEST(CliSmoke, UnknownFlagRejected) {
  expectRejected(Cli + " --frobnicate " + Argmin, "unknown option");
}

TEST(CliSmoke, MalformedTripRejected) {
  expectRejected(Cli + " --trip=abc " + Argmin, "--trip");
  expectRejected(Cli + " --trip= " + Argmin, "--trip");
  expectRejected(Cli + " --trip=0 " + Argmin, "--trip");
}

TEST(CliSmoke, MalformedNumericFlagsRejected) {
  expectRejected(Cli + " --seed=12x " + Argmin, "--seed");
  expectRejected(Cli + " --jobs=-3 " + Argmin, "--jobs");
  expectRejected(Cli + " --tx-abort-prob=1.5 " + Argmin, "--tx-abort-prob");
}

TEST(CliSmoke, MalformedVlRejected) {
  // The --vl contract mirrors --sim-mode: non-power-of-two, out-of-range,
  // and malformed values all exit 2 with a usage hint.
  expectRejected(Cli + " --vl=abc " + Argmin, "--vl");
  expectRejected(Cli + " --vl= " + Argmin, "--vl");
  expectRejected(Cli + " --vl=384 " + Argmin, "--vl");
  expectRejected(Cli + " --vl=64 " + Argmin, "--vl");
  expectRejected(Cli + " --vl=4096 " + Argmin, "--vl");
}

TEST(CliSmoke, ValidVlRunSucceeds) {
  for (const char *Vl : {"128", "256", "512", "1024", "2048"}) {
    CmdResult R =
        run(Cli + " " + Argmin + " --trip=64 --vl=" + Vl + " --run");
    EXPECT_EQ(R.Exit, 0) << "--vl=" << Vl << "\n" << R.Output;
  }
}

TEST(CliSmoke, PredicatedRunSucceeds) {
  CmdResult R = run(Cli + " " + Argmin +
                    " --trip=64 --vl=256 --predicated --run");
  EXPECT_EQ(R.Exit, 0) << R.Output;
}

TEST(CliSmoke, MalformedSetRejected) {
  expectRejected(Cli + " --set=foo " + Argmin, "--set");
  expectRejected(Cli + " --set==7 " + Argmin, "--set");
  expectRejected(Cli + " --set=min_val=zz " + Argmin, "--set");
}

TEST(CliSmoke, MissingLoopFileRejected) {
  expectRejected(Cli, "no loop file");
}

TEST(CliSmoke, MultipleLoopFilesRejected) {
  expectRejected(Cli + " " + Argmin + " " + Argmin, "multiple loop files");
}

TEST(CliSmoke, MissingFileFailsNonzeroWithoutUsageSpam) {
  CmdResult R = run(Cli + " /nonexistent/loop.fv");
  EXPECT_NE(R.Exit, 0);
  EXPECT_NE(R.Output.find("cannot open"), std::string::npos) << R.Output;
}

TEST(CliSmoke, ValidRunSucceeds) {
  CmdResult R = run(Cli + " " + Argmin + " --trip=64 --seed=3");
  EXPECT_EQ(R.Exit, 0) << R.Output;
  EXPECT_NE(R.Output.find("argmin"), std::string::npos) << R.Output;
}

TEST(CliSmoke, ValidParallelRunSucceeds) {
  CmdResult R = run(Cli + " " + Argmin + " --trip=64 --jobs=2");
  EXPECT_EQ(R.Exit, 0) << R.Output;
}

TEST(CliSmoke, RemarksTextListsStrategies) {
  CmdResult R = run(Cli + " " + Argmin + " --remarks");
  EXPECT_EQ(R.Exit, 0) << R.Output;
  EXPECT_NE(R.Output.find("== Remarks =="), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("vectorized"), std::string::npos) << R.Output;
}

TEST(CliSmoke, RemarksJsonIsPureMachineReadableOutput) {
  CmdResult R = run(Cli + " " + Argmin + " --remarks=json");
  EXPECT_EQ(R.Exit, 0) << R.Output;
  // Pure JSON: an array of remark objects, no human-readable framing.
  EXPECT_EQ(R.Output.rfind("[", 0), 0u) << R.Output;
  EXPECT_EQ(R.Output.find("== "), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"kind\": \"applied\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"id\": \"vectorized\""), std::string::npos)
      << R.Output;
  // The traditional vectorizer declines argmin; the decline must be a
  // structured missed-remark, never silent.
  EXPECT_NE(R.Output.find("\"kind\": \"missed\""), std::string::npos)
      << R.Output;
}

TEST(CliSmoke, RemarksBadValueRejected) {
  expectRejected(Cli + " --remarks=yaml " + Argmin, "--remarks");
}

TEST(BenchSmoke, UnknownFlagRejected) {
  CmdResult R = run(Bench + " --bogus");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("usage:"), std::string::npos) << R.Output;
}

TEST(BenchSmoke, MalformedJobsRejected) {
  CmdResult R = run(Bench + " --jobs=abc");
  EXPECT_EQ(R.Exit, 2) << R.Output;
}

TEST(BenchSmoke, BadSimModeRejected) {
  expectRejected(Bench + " --sim-mode=warp", "--sim-mode");
  expectRejected(Bench + " --sim-mode=", "--sim-mode");
  expectRejected(Bench + " --sim-mode=FULL", "--sim-mode");
}

TEST(BenchSmoke, MalformedVlRejected) {
  expectRejected(Bench + " --vl=abc", "--vl");
  expectRejected(Bench + " --vl=", "--vl");
  expectRejected(Bench + " --vl=384", "--vl");
  expectRejected(Bench + " --vl=64", "--vl");
  expectRejected(Bench + " --vl=4096", "--vl");
}

TEST(BenchSmoke, MalformedSamplingFlagsRejected) {
  expectRejected(Bench + " --sample-interval=0", "--sample-interval");
  expectRejected(Bench + " --sample-interval=abc", "--sample-interval");
  expectRejected(Bench + " --sample-detail=0", "--sample-detail");
  expectRejected(Bench + " --sample-warmup=-1", "--sample-warmup");
  expectRejected(Bench + " --sample-seed=bogus", "--sample-seed");
}

const std::string Fuzz = FLEXVEC_FUZZ_PATH;

TEST(FuzzSmoke, UnknownFlagRejected) {
  CmdResult R = run(Fuzz + " --bogus");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("usage:"), std::string::npos) << R.Output;
}

TEST(FuzzSmoke, MalformedValuesRejected) {
  for (const char *Bad :
       {"--count=0", "--count=abc", "--seed=1x", "--envelope=tiny",
        "--storm=2", "--rounds=0", "--jobs=-1"}) {
    CmdResult R = run(Fuzz + " " + Bad);
    EXPECT_EQ(R.Exit, 2) << Bad << "\n" << R.Output;
  }
}

TEST(FuzzSmoke, PinnedSeedRunIsCleanAndWritesSummary) {
  std::string Out = "cli_smoke_fuzz.json";
  std::remove(Out.c_str());
  CmdResult R = run(Fuzz + " --count=12 --seed=5 --jobs=2 --out=" + Out);
  EXPECT_EQ(R.Exit, 0) << R.Output;
  EXPECT_NE(R.Output.find("0 failure(s)"), std::string::npos) << R.Output;
  FILE *F = std::fopen(Out.c_str(), "r");
  ASSERT_NE(F, nullptr) << "fuzz did not write " << Out;
  char Buf[128] = {0};
  size_t N = fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  EXPECT_GT(N, 0u);
  EXPECT_NE(std::string(Buf).find("flexvec-fuzz/v1"), std::string::npos);
  std::remove(Out.c_str());
}

// The fuzz summary is a pure function of (seed, count, envelope) under
// --deterministic: any job count produces byte-identical JSON.
TEST(FuzzSmoke, DeterministicSummaryIsJobCountInvariant) {
  std::string Out1 = "cli_smoke_fuzz_j1.json";
  std::string Out8 = "cli_smoke_fuzz_j8.json";
  std::remove(Out1.c_str());
  std::remove(Out8.c_str());
  CmdResult R1 = run(Fuzz + " --count=16 --seed=9 --jobs=1 --deterministic "
                            "--quiet --out=" +
                     Out1);
  CmdResult R8 = run(Fuzz + " --count=16 --seed=9 --jobs=8 --deterministic "
                            "--quiet --out=" +
                     Out8);
  EXPECT_EQ(R1.Exit, 0) << R1.Output;
  EXPECT_EQ(R8.Exit, 0) << R8.Output;
  auto slurp = [](const std::string &Path) {
    std::string S;
    FILE *F = std::fopen(Path.c_str(), "r");
    if (!F)
      return S;
    char Buf[4096];
    size_t N;
    while ((N = fread(Buf, 1, sizeof(Buf), F)) > 0)
      S.append(Buf, N);
    std::fclose(F);
    return S;
  };
  std::string A = slurp(Out1), B = slurp(Out8);
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, B);
  std::remove(Out1.c_str());
  std::remove(Out8.c_str());
}

TEST(BenchSmoke, TinyDeterministicRunWritesJson) {
  std::string Out = "cli_smoke_bench.json";
  std::remove(Out.c_str());
  CmdResult R = run(Bench + " --scale=0.02 --jobs=2 --deterministic --out=" +
                    Out + " --quiet");
  EXPECT_EQ(R.Exit, 0) << R.Output;
  FILE *F = std::fopen(Out.c_str(), "r");
  ASSERT_NE(F, nullptr) << "bench did not write " << Out;
  char Buf[64] = {0};
  size_t N = fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  EXPECT_GT(N, 0u);
  EXPECT_NE(std::string(Buf).find("flexvec-bench-figure8"),
            std::string::npos);
  std::remove(Out.c_str());
}

} // namespace
