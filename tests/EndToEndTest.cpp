//===- tests/EndToEndTest.cpp - Cross-variant correctness ------------------===//
//
// Property tests: for the paper's three example loops, every generated
// program variant (scalar, speculative, FlexVec, FlexVec-RTM) must produce
// exactly the reference interpreter's memory image and live-out values,
// across many random inputs and dependence probabilities.
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "workloads/PaperLoops.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::core;
using namespace flexvec::workloads;

namespace {

struct Variant {
  const char *Name;
  const codegen::CompiledLoop *CL;
};

void expectAllVariantsMatch(const ir::LoopFunction &F,
                            const PipelineResult &PR, const LoopInputs &In) {
  RunOutcome Ref = runReference(F, In.Image, In.B);
  ASSERT_TRUE(Ref.Ok);

  std::vector<Variant> Variants;
  Variants.push_back({"scalar", &PR.Scalar});
  if (PR.Traditional)
    Variants.push_back({"traditional", &*PR.Traditional});
  if (PR.Speculative)
    Variants.push_back({"speculative", &*PR.Speculative});
  if (PR.FlexVec)
    Variants.push_back({"flexvec", &*PR.FlexVec});
  if (PR.Rtm)
    Variants.push_back({"flexvec-rtm", &*PR.Rtm});

  for (const Variant &V : Variants) {
    RunOutcome Out = runProgram(*V.CL, In.Image, In.B);
    EXPECT_TRUE(Out.Ok) << V.Name << ": " << Out.Error << "\n"
                        << V.CL->Prog.disassemble();
    EXPECT_TRUE(outcomesMatch(F, Ref, Out))
        << V.Name << " diverges from the reference\n"
        << "ref mem=" << Ref.MemFingerprint << " got=" << Out.MemFingerprint;
  }
}

} // namespace

TEST(EndToEnd, H264PlanShape) {
  auto F = buildH264Loop();
  PipelineResult PR = compileLoop(*F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  EXPECT_TRUE(PR.Plan.needsFlexVec());
  ASSERT_EQ(PR.Plan.CondUpdateVpls.size(), 1u);
  EXPECT_EQ(PR.Plan.CondUpdateVpls[0].Updates.size(), 2u); // min + best_pos
  EXPECT_FALSE(PR.Traditional.has_value()); // Baseline cannot vectorize it.
  ASSERT_TRUE(PR.FlexVec.has_value());
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::VSlctLast));
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::KFtmInc));
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::VGatherFF));
}

TEST(EndToEnd, ConflictPlanShape) {
  auto F = buildConflictLoop();
  PipelineResult PR = compileLoop(*F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  ASSERT_EQ(PR.Plan.MemConflictVpls.size(), 1u);
  ASSERT_TRUE(PR.FlexVec.has_value());
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::VConflictM));
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::KFtmExc));
}

TEST(EndToEnd, EarlyExitPlanShape) {
  auto F = buildEarlyExitLoop();
  PipelineResult PR = compileLoop(*F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  ASSERT_EQ(PR.Plan.EarlyExits.size(), 1u);
  ASSERT_TRUE(PR.FlexVec.has_value());
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::VMovFF));
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::KFtmInc));
}

class H264Property : public ::testing::TestWithParam<int> {};

TEST_P(H264Property, AllVariantsMatchReference) {
  auto F = buildH264Loop();
  PipelineResult PR = compileLoop(*F, /*RtmTile=*/64);
  Rng R(1000 + static_cast<uint64_t>(GetParam()));
  double Probs[] = {0.0, 0.02, 0.1, 0.4, 0.9};
  for (double P : Probs) {
    int64_t N = 40 + static_cast<int64_t>(R.nextBelow(400));
    LoopInputs In = genH264Inputs(*F, R, N, P);
    expectAllVariantsMatch(*F, PR, In);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, H264Property, ::testing::Range(0, 8));

class ConflictProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConflictProperty, AllVariantsMatchReference) {
  auto F = buildConflictLoop();
  PipelineResult PR = compileLoop(*F, /*RtmTile=*/64);
  Rng R(2000 + static_cast<uint64_t>(GetParam()));
  double Probs[] = {0.0, 0.05, 0.3, 0.8};
  for (double P : Probs) {
    int64_t N = 40 + static_cast<int64_t>(R.nextBelow(400));
    LoopInputs In = genConflictInputs(*F, R, N, P, /*TableSize=*/256);
    expectAllVariantsMatch(*F, PR, In);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictProperty, ::testing::Range(0, 8));

class EarlyExitProperty : public ::testing::TestWithParam<int> {};

TEST_P(EarlyExitProperty, AllVariantsMatchReference) {
  auto F = buildEarlyExitLoop();
  PipelineResult PR = compileLoop(*F, /*RtmTile=*/64);
  Rng R(3000 + static_cast<uint64_t>(GetParam()));
  for (int Case = 0; Case < 6; ++Case) {
    int64_t N = 50 + static_cast<int64_t>(R.nextBelow(300));
    // Match positions: early, mid, at the very end, and absent.
    int64_t MatchPos;
    switch (Case % 4) {
    case 0:
      MatchPos = static_cast<int64_t>(R.nextBelow(8));
      break;
    case 1:
      MatchPos = static_cast<int64_t>(R.nextBelow(static_cast<uint64_t>(N)));
      break;
    case 2:
      MatchPos = N - 1;
      break;
    default:
      MatchPos = N + 100; // No match.
    }
    LoopInputs In = genEarlyExitInputs(*F, R, N, MatchPos);
    expectAllVariantsMatch(*F, PR, In);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EarlyExitProperty, ::testing::Range(0, 8));

TEST(EndToEnd, EarlyExitSpeculativeFaultFallsBackToScalar) {
  auto F = buildEarlyExitLoop();
  PipelineResult PR = compileLoop(*F);
  ASSERT_TRUE(PR.FlexVec.has_value());
  Rng R(42);
  // The string ends right at a page boundary one element past the match:
  // speculative lanes fault, VMOVFF clips the mask, and the program must
  // take the scalar fallback and still produce the right answer.
  LoopInputs In = genEarlyExitInputs(*F, R, /*N=*/500, /*MatchPos=*/123,
                                     /*TightPages=*/true);
  RunOutcome Ref = runReference(*F, In.Image, In.B);
  RunOutcome Out = runProgram(*PR.FlexVec, In.Image, In.B);
  ASSERT_TRUE(Out.Ok) << Out.Error;
  EXPECT_TRUE(outcomesMatch(*F, Ref, Out));

  // The RTM variant must also survive via transaction abort + scalar tile.
  ASSERT_TRUE(PR.Rtm.has_value());
  RunOutcome OutRtm = runProgram(*PR.Rtm, In.Image, In.B);
  ASSERT_TRUE(OutRtm.Ok) << OutRtm.Error;
  EXPECT_TRUE(outcomesMatch(*F, Ref, OutRtm));
}
