//===- tests/JitEquivalenceTest.cpp - Dispatch-mode equivalence ------------===//
//
// The dispatch contract (emu/Machine.h): the computed-goto threaded loop
// with the superinstruction pass engaged is *observably identical* to the
// reference plain switch loop — same ExecStats field for field, same
// trace-batch stream, same memory fingerprints and live-outs — so the
// choice of dispatch loop is purely a speed knob. This suite holds that
// contract across the whole Figure-8 corpus, both fuzz envelopes (pinned
// seeds), and a seeded RTM abort storm, and pins the fusion pass's
// determinism: decisions key on the static opcode sequence only, never on
// loop names (the compiled-loop cache shares programs across names).
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiled.h"
#include "core/CompileCache.h"
#include "core/Evaluator.h"
#include "core/FaultHarness.h"
#include "core/ParallelEvaluator.h"
#include "core/Pipeline.h"
#include "gen/Gen.h"
#include "ir/Parser.h"
#include "support/Hash.h"
#include "support/Random.h"
#include "workloads/Figure8.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace flexvec;

namespace {

uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

/// Order-sensitive digest over every observable field of a DynInstr
/// record, including the per-lane effective addresses (same folding as
/// TraceBatchTest, so a divergence here means the dispatch loops did not
/// deliver identical streams).
struct RecordDigest {
  uint64_t H = 0;
  uint64_t Count = 0;

  void fold(const emu::DynInstr &DI) {
    H = hashCombine(H, static_cast<uint64_t>(DI.Instr->Op));
    H = hashCombine(H, DI.InstrIdx);
    H = hashCombine(H, DI.NextIdx);
    H = hashCombine(H, DI.Taken ? 1 : 0);
    H = hashCombine(H, DI.ActiveMask);
    H = hashCombine(H, DI.AccessSize);
    H = hashCombine(H, DI.NumMemAddrs);
    for (uint32_t A = 0; A < DI.NumMemAddrs; ++A)
      H = hashCombine(H, DI.MemAddrs[A]);
    ++Count;
  }
};

class DigestSink : public emu::TraceSink {
public:
  RecordDigest D;
  void onInstr(const emu::DynInstr &DI) override { D.fold(DI); }
  void onBatch(const emu::DynInstr *Batch, size_t N) override {
    for (size_t I = 0; I < N; ++I)
      D.fold(Batch[I]);
  }
};

/// runProgramMulti with the dispatch mode pinned (the core API resolves
/// DispatchMode::Auto from the environment, which is exactly what an
/// equivalence test must not depend on). Mirrors core::runProgramMulti's
/// binding conventions; optionally copies the final run's fusion report.
core::RunOutcome runWithDispatch(const ir::LoopFunction &F,
                                 const codegen::CompiledLoop &CL,
                                 const mem::Memory &BaseImage,
                                 const std::vector<ir::Bindings> &Invocations,
                                 emu::DispatchMode Mode,
                                 emu::TraceSink *Sink = nullptr,
                                 emu::FusionReport *FusionOut = nullptr) {
  core::RunOutcome Out;
  Out.Ok = true;
  mem::Memory M = BaseImage.clone();
  core::setUpDispatchCell(CL, M);
  emu::Machine Machine(M);
  emu::RunLimits Limits;
  Limits.Dispatch = Mode;
  for (const ir::Bindings &B : Invocations) {
    Machine.resetRegisters();
    for (size_t S = 0; S < B.ScalarValues.size(); ++S)
      Machine.setScalar(codegen::scalarParamReg(static_cast<int>(S)).Index,
                        B.ScalarValues[S]);
    for (size_t A = 0; A < B.ArrayBases.size(); ++A)
      Machine.setScalar(codegen::arrayBaseReg(static_cast<int>(A)).Index,
                        static_cast<int64_t>(B.ArrayBases[A]));
    emu::ExecResult R = Machine.run(CL.Prog, Limits, Sink);
    Out.Exec.Stats.merge(R.Stats);
    if (R.Reason != emu::StopReason::Halted) {
      Out.Ok = false;
      Out.Error = "invocation failed: " + R.describe();
      break;
    }
    Out.LiveOuts.clear();
    for (size_t S = 0; S < B.ScalarValues.size(); ++S)
      Out.LiveOuts.push_back(Machine.getScalar(
          codegen::scalarParamReg(static_cast<int>(S)).Index));
    uint64_t H = Out.LiveOutHash;
    for (size_t S = 0; S < F.scalars().size(); ++S)
      if (F.scalar(S).IsLiveOut)
        H = hashCombine(H, static_cast<uint64_t>(Out.LiveOuts[S]));
    Out.LiveOutHash = H;
  }
  if (FusionOut)
    *FusionOut = Machine.fusionReport();
  Out.Tx = Machine.txStats();
  Out.HasDispatch = core::tearDownDispatchCell(CL, M, Out.Dispatch);
  Out.MemFingerprint = M.fingerprint();
  return Out;
}

/// Every field of ExecStats, element for element — fusion preserves
/// component semantics exactly, so even the opcode counts and the
/// mask-density histogram must match.
void expectStatsEqual(const emu::ExecStats &A, const emu::ExecStats &B,
                      const std::string &Where) {
  EXPECT_EQ(A.Instructions, B.Instructions) << Where;
  EXPECT_EQ(A.Branches, B.Branches) << Where;
  EXPECT_EQ(A.TakenBranches, B.TakenBranches) << Where;
  EXPECT_EQ(A.MemoryAccesses, B.MemoryAccesses) << Where;
  EXPECT_EQ(A.VectorOps, B.VectorOps) << Where;
  EXPECT_EQ(A.RtmRetries, B.RtmRetries) << Where;
  EXPECT_EQ(A.RtmFallbacks, B.RtmFallbacks) << Where;
  EXPECT_EQ(A.RtmBudgetExhausted, B.RtmBudgetExhausted) << Where;
  EXPECT_EQ(A.BackoffCycles, B.BackoffCycles) << Where;
  EXPECT_EQ(A.VplSteps, B.VplSteps) << Where;
  EXPECT_EQ(A.VplPartitions, B.VplPartitions) << Where;
  EXPECT_EQ(A.FFClips, B.FFClips) << Where;
  EXPECT_EQ(A.FFSuppressedLanes, B.FFSuppressedLanes) << Where;
  EXPECT_EQ(A.ConflictChecks, B.ConflictChecks) << Where;
  EXPECT_EQ(A.ConflictHits, B.ConflictHits) << Where;
  EXPECT_EQ(A.SimdUnitStrideHits, B.SimdUnitStrideHits) << Where;
  EXPECT_EQ(A.SimdMaskShortcircuits, B.SimdMaskShortcircuits) << Where;
  EXPECT_EQ(A.MaskDensity, B.MaskDensity) << Where;
  EXPECT_EQ(A.RtmRetryDepth, B.RtmRetryDepth) << Where;
  EXPECT_EQ(A.OpcodeCounts, B.OpcodeCounts) << Where;
  // TraceBatches intentionally excluded: batching cadence is a delivery
  // detail (the stream-content digests pin the actual records).
}

std::string cellName(const std::string &Workload, unsigned V) {
  return Workload + "/" + core::variantName(static_cast<core::VariantId>(V));
}

// --- Figure-8 corpus: stats, memory, and live-outs -----------------------===//

TEST(JitEquivalence, Figure8CellsIdenticalAcrossDispatchModes) {
  workloads::Figure8Suite Suite =
      workloads::buildFigure8Suite(/*IterationScale=*/0.02);
  uint64_t CellsChecked = 0, FusionSites = 0;
  for (const core::SweepWorkload &W : Suite.Workloads) {
    core::PipelineResult PR = core::compileLoop(*W.F);
    Rng R(deriveStreamSeed(/*BaseSeed=*/1, fnv1a64(W.Name)));
    core::WorkloadInstance In = W.Gen(R);
    for (unsigned V = 0; V < core::NumVariants; ++V) {
      const codegen::CompiledLoop *CL =
          core::selectVariant(PR, static_cast<core::VariantId>(V));
      if (!CL)
        continue;
      std::string Where = cellName(W.Name, V);
      // Sinkless runs: this is the configuration where the threaded loop
      // actually engages the superinstruction pass, so the comparison
      // covers fused dispatch, not just the goto loop.
      emu::FusionReport FR;
      core::RunOutcome Plain =
          runWithDispatch(*W.F, *CL, In.Image, In.Invocations,
                          emu::DispatchMode::Plain);
      core::RunOutcome Threaded =
          runWithDispatch(*W.F, *CL, In.Image, In.Invocations,
                          emu::DispatchMode::Threaded, nullptr, &FR);
      ASSERT_TRUE(Plain.Ok) << Where << ": " << Plain.Error;
      ASSERT_TRUE(Threaded.Ok) << Where << ": " << Threaded.Error;

      expectStatsEqual(Plain.Exec.Stats, Threaded.Exec.Stats, Where);
      EXPECT_EQ(Plain.MemFingerprint, Threaded.MemFingerprint) << Where;
      EXPECT_EQ(Plain.LiveOutHash, Threaded.LiveOutHash) << Where;
      EXPECT_EQ(Plain.LiveOuts, Threaded.LiveOuts) << Where;
      EXPECT_EQ(Plain.Tx.Commits, Threaded.Tx.Commits) << Where;
      EXPECT_EQ(Plain.Tx.Aborts, Threaded.Tx.Aborts) << Where;
      EXPECT_EQ(Plain.HasDispatch, Threaded.HasDispatch) << Where;
      if (Plain.HasDispatch) {
        EXPECT_EQ(Plain.Dispatch.Invocations, Threaded.Dispatch.Invocations)
            << Where;
        EXPECT_EQ(Plain.Dispatch.Demotions, Threaded.Dispatch.Demotions)
            << Where;
      }
      FusionSites += FR.Sites.size();
      ++CellsChecked;
    }
  }
  EXPECT_GE(CellsChecked, 18u * 2u);
  // The corpus must actually exercise fused dispatch somewhere, or the
  // whole comparison degenerates to plain-vs-plain.
  EXPECT_GT(FusionSites, 0u);
}

// --- Figure-8 corpus: trace-stream equality ------------------------------===//

TEST(JitEquivalence, TraceStreamsIdenticalAcrossDispatchModes) {
  workloads::Figure8Suite Suite =
      workloads::buildFigure8Suite(/*IterationScale=*/0.02);
  uint64_t CellsChecked = 0;
  for (const core::SweepWorkload &W : Suite.Workloads) {
    core::PipelineResult PR = core::compileLoop(*W.F);
    Rng R(deriveStreamSeed(1, fnv1a64(W.Name)));
    core::WorkloadInstance In = W.Gen(R);
    for (unsigned V = 0; V < core::NumVariants; ++V) {
      const codegen::CompiledLoop *CL =
          core::selectVariant(PR, static_cast<core::VariantId>(V));
      if (!CL)
        continue;
      std::string Where = cellName(W.Name, V);
      DigestSink PlainSink, ThreadedSink;
      core::RunOutcome Plain =
          runWithDispatch(*W.F, *CL, In.Image, In.Invocations,
                          emu::DispatchMode::Plain, &PlainSink);
      core::RunOutcome Threaded =
          runWithDispatch(*W.F, *CL, In.Image, In.Invocations,
                          emu::DispatchMode::Threaded, &ThreadedSink);
      ASSERT_TRUE(Plain.Ok && Threaded.Ok) << Where;
      EXPECT_EQ(PlainSink.D.Count, ThreadedSink.D.Count) << Where;
      EXPECT_EQ(PlainSink.D.H, ThreadedSink.D.H)
          << Where << ": threaded dispatch delivered a different trace";
      ++CellsChecked;
    }
  }
  EXPECT_GE(CellsChecked, 18u * 2u);
}

// --- Fuzz envelopes, pinned seeds ----------------------------------------===//

void runFuzzEquivalence(const gen::Envelope &E, uint64_t Seed) {
  gen::GeneratedLoop G = gen::generateLoop(Seed, E);
  core::PipelineResult PR = core::compileLoop(*G.F);
  gen::InputPlan Plan;
  Plan.IndexMask = E.IndexMask;
  Plan.IndexBound = E.TableSize;
  Plan.ArraySlack = E.MaxAffineOffset + 4;
  Rng R(deriveStreamSeed(Seed, 0xd15b));
  mem::Memory Image;
  ir::Bindings B = ir::Bindings::forFunction(*G.F);
  gen::buildConventionInputs(*G.F, R, Plan, Image, B);
  // Two invocations over the same (persistent) image to cover the
  // multi-invocation reset path under both dispatch loops.
  std::vector<ir::Bindings> Invocations{B, B};
  for (unsigned V = 0; V < core::NumVariants; ++V) {
    const codegen::CompiledLoop *CL =
        core::selectVariant(PR, static_cast<core::VariantId>(V));
    if (!CL)
      continue;
    std::string Where = "seed " + std::to_string(Seed) + " variant " +
                        core::variantName(static_cast<core::VariantId>(V));
    core::RunOutcome Plain = runWithDispatch(
        *G.F, *CL, Image, Invocations, emu::DispatchMode::Plain);
    core::RunOutcome Threaded = runWithDispatch(
        *G.F, *CL, Image, Invocations, emu::DispatchMode::Threaded);
    ASSERT_TRUE(Plain.Ok) << Where << ": " << Plain.Error;
    ASSERT_TRUE(Threaded.Ok) << Where << ": " << Threaded.Error;
    expectStatsEqual(Plain.Exec.Stats, Threaded.Exec.Stats, Where);
    EXPECT_EQ(Plain.MemFingerprint, Threaded.MemFingerprint) << Where;
    EXPECT_EQ(Plain.LiveOutHash, Threaded.LiveOutHash) << Where;
  }
}

TEST(JitEquivalence, ClassicEnvelopeIdenticalAcrossDispatchModes) {
  for (uint64_t Seed = 0; Seed < 12; ++Seed)
    runFuzzEquivalence(gen::Envelope::classic(), Seed);
}

TEST(JitEquivalence, WidenedEnvelopeIdenticalAcrossDispatchModes) {
  for (uint64_t Seed = 0; Seed < 12; ++Seed)
    runFuzzEquivalence(gen::Envelope::widened(), Seed);
}

// --- Fault storm ---------------------------------------------------------===//

TEST(JitEquivalence, FaultStormIdenticalAcrossDispatchModes) {
  // A seeded RTM conflict-abort storm exercises the retry/backoff/fallback
  // machinery — the paths where the threaded loop's fused heads must still
  // deliver aborts, snapshots, and retries exactly like the plain loop.
  workloads::Figure8Suite Suite =
      workloads::buildFigure8Suite(/*IterationScale=*/0.02);
  uint64_t StormyCells = 0;
  for (const core::SweepWorkload &W : Suite.Workloads) {
    core::PipelineResult PR = core::compileLoop(*W.F);
    Rng R(deriveStreamSeed(1, fnv1a64(W.Name)));
    core::WorkloadInstance In = W.Gen(R);
    for (unsigned V = 0; V < core::NumVariants; ++V) {
      const codegen::CompiledLoop *CL =
          core::selectVariant(PR, static_cast<core::VariantId>(V));
      if (!CL)
        continue;
      core::FaultPlan Plan;
      Plan.Tx.Seed = deriveStreamSeed(fnv1a64(W.Name), V);
      Plan.Tx.AbortProb = 0.5;
      std::string Where = cellName(W.Name, V);

      Plan.Dispatch = emu::DispatchMode::Plain;
      core::FaultedRun Plain = core::runProgramMultiWithFaults(
          *W.F, *CL, In.Image, In.Invocations, Plan);
      Plan.Dispatch = emu::DispatchMode::Threaded;
      core::FaultedRun Threaded = core::runProgramMultiWithFaults(
          *W.F, *CL, In.Image, In.Invocations, Plan);

      ASSERT_EQ(Plain.Outcome.Ok, Threaded.Outcome.Ok) << Where;
      expectStatsEqual(Plain.Outcome.Exec.Stats, Threaded.Outcome.Exec.Stats,
                       Where);
      EXPECT_EQ(Plain.Outcome.MemFingerprint, Threaded.Outcome.MemFingerprint)
          << Where;
      EXPECT_EQ(Plain.Outcome.LiveOutHash, Threaded.Outcome.LiveOutHash)
          << Where;
      // The same abort schedule must have been injected and absorbed the
      // same way: identical injector and transaction-unit counters.
      EXPECT_EQ(Plain.Injection.TxOpsSeen, Threaded.Injection.TxOpsSeen)
          << Where;
      EXPECT_EQ(Plain.Injection.TxAbortsInjected,
                Threaded.Injection.TxAbortsInjected)
          << Where;
      EXPECT_EQ(Plain.Tx.Commits, Threaded.Tx.Commits) << Where;
      EXPECT_EQ(Plain.Tx.Aborts, Threaded.Tx.Aborts) << Where;
      StormyCells += Plain.Injection.TxAbortsInjected > 0;
    }
  }
  // The storm must have actually hit transactional cells, or this test
  // proved nothing beyond the no-fault leg above.
  EXPECT_GT(StormyCells, 0u);
}

// --- Fusion determinism --------------------------------------------------===//

// The same loop body under two different names. Fusion decisions (and the
// compiled-loop cache key) must be pure functions of the static opcode
// sequence; a name leaking into either would let two sweeps sharing a
// cache observe different fused programs for the same structure.
const char *FusionLoopA = R"(
loop fusion_probe_alpha(i64 n trip, i32 acc liveout, i32 t,
                        i32 idxs[] readonly, i32 vals[] readonly,
                        i32 tbl[]) {
  t = vals[i] * 3;
  if (t > 10) { acc = acc + t; }
  tbl[idxs[i]] = tbl[idxs[i]] + 1;
}
)";

const char *FusionLoopB = R"(
loop a_completely_different_name(i64 n trip, i32 acc liveout, i32 t,
                        i32 idxs[] readonly, i32 vals[] readonly,
                        i32 tbl[]) {
  t = vals[i] * 3;
  if (t > 10) { acc = acc + t; }
  tbl[idxs[i]] = tbl[idxs[i]] + 1;
}
)";

TEST(JitEquivalence, FusionDecisionsIgnoreLoopNames) {
  ir::ParseResult PA = ir::parseLoop(FusionLoopA);
  ir::ParseResult PB = ir::parseLoop(FusionLoopB);
  ASSERT_TRUE(PA) << PA.Error;
  ASSERT_TRUE(PB) << PB.Error;

  // Structurally identical loops share one compiled-loop cache key (this
  // is what makes name-independent fusion mandatory, not just tidy).
  EXPECT_EQ(core::CompileCache::keyFor(*PA.F, codegen::DefaultRtmTile),
            core::CompileCache::keyFor(*PB.F, codegen::DefaultRtmTile));

  core::PipelineResult RA = core::compileLoop(*PA.F);
  core::PipelineResult RB = core::compileLoop(*PB.F);

  Rng RngA(42), RngB(42);
  mem::Memory ImgA, ImgB;
  ir::Bindings BA = ir::Bindings::forFunction(*PA.F);
  ir::Bindings BB = ir::Bindings::forFunction(*PB.F);
  gen::buildConventionInputs(*PA.F, RngA, gen::InputPlan(), ImgA, BA);
  gen::buildConventionInputs(*PB.F, RngB, gen::InputPlan(), ImgB, BB);

  uint64_t SitesSeen = 0;
  for (unsigned V = 0; V < core::NumVariants; ++V) {
    const codegen::CompiledLoop *CA =
        core::selectVariant(RA, static_cast<core::VariantId>(V));
    const codegen::CompiledLoop *CB =
        core::selectVariant(RB, static_cast<core::VariantId>(V));
    ASSERT_EQ(CA == nullptr, CB == nullptr) << "variant " << V;
    if (!CA)
      continue;
    emu::FusionReport FA, FB;
    core::RunOutcome OA = runWithDispatch(*PA.F, *CA, ImgA, {BA},
                                          emu::DispatchMode::Threaded,
                                          nullptr, &FA);
    core::RunOutcome OB = runWithDispatch(*PB.F, *CB, ImgB, {BB},
                                          emu::DispatchMode::Threaded,
                                          nullptr, &FB);
    ASSERT_TRUE(OA.Ok) << OA.Error;
    ASSERT_TRUE(OB.Ok) << OB.Error;
    EXPECT_TRUE(FA.Pairs == FB.Pairs) << "variant " << V
        << ": pair histogram keyed on something name-dependent";
    ASSERT_EQ(FA.Sites.size(), FB.Sites.size()) << "variant " << V;
    for (size_t I = 0; I < FA.Sites.size(); ++I)
      EXPECT_TRUE(FA.Sites[I] == FB.Sites[I])
          << "variant " << V << " site " << I;
    SitesSeen += FA.Sites.size();
    // Identical structure + identical inputs: identical architectural
    // outcomes through the fused programs.
    EXPECT_EQ(OA.MemFingerprint, OB.MemFingerprint) << "variant " << V;
    expectStatsEqual(OA.Exec.Stats, OB.Exec.Stats,
                     std::string("variant ") + std::to_string(V));
  }
  EXPECT_GT(SitesSeen, 0u) << "the probe loop must actually fuse";
}

// Fusion is an optimization of sinkless runs only: with a trace sink
// attached the per-instruction stream must be produced anyway, so the
// pass stays out and the report is empty.
TEST(JitEquivalence, FusionStaysOffWhenTracing) {
  ir::ParseResult PA = ir::parseLoop(FusionLoopA);
  ASSERT_TRUE(PA) << PA.Error;
  core::PipelineResult PR = core::compileLoop(*PA.F);
  Rng R(42);
  mem::Memory Img;
  ir::Bindings B = ir::Bindings::forFunction(*PA.F);
  gen::buildConventionInputs(*PA.F, R, gen::InputPlan(), Img, B);

  emu::FusionReport Sinkless, Traced;
  DigestSink Sink;
  runWithDispatch(*PA.F, PR.Scalar, Img, {B}, emu::DispatchMode::Threaded,
                  nullptr, &Sinkless);
  runWithDispatch(*PA.F, PR.Scalar, Img, {B}, emu::DispatchMode::Threaded,
                  &Sink, &Traced);
  EXPECT_GT(Sinkless.Sites.size(), 0u);
  EXPECT_TRUE(Traced.Sites.empty())
      << "tracing runs must not engage the superinstruction pass";
}

} // namespace
