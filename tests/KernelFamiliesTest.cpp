//===- tests/KernelFamiliesTest.cpp - Imported kernel-family rows ----------===//
//
// The acceptance bar for the POLY (polybench-style affine) and IRREG
// (Autovesk-style gather/scatter) sweep rows:
//
//  * every family kernel compiles to a vectorizable plan with no silent
//    variant declines, and POLY rows in particular must produce the
//    traditional variant (they are the affine end of the spectrum);
//  * every generated variant matches the reference interpreter, and the
//    transactional variants stay equivalent under an RTM conflict storm
//    (via the same gen::checkLoop contract the fuzzer enforces);
//  * under the storm, an adaptive family program that actually aborts must
//    demote — affine rows whose adaptive body never opens a transaction
//    are exempt (that is what distinguishes them from the Table 2 corpus);
//  * remarks and disassembly are pinned as goldens under
//    tests/golden/families/ (regenerate with FLEXVEC_UPDATE_GOLDEN=1).
//
//===----------------------------------------------------------------------===//

#include "core/FaultHarness.h"
#include "core/ParallelEvaluator.h"
#include "core/Pipeline.h"
#include "gen/Differential.h"
#include "support/Hash.h"
#include "workloads/Figure8.h"
#include "workloads/KernelFamilies.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace flexvec;
using workloads::Benchmark;

namespace {

/// The family goldens (remarks + disassembly) freeze the 512-bit
/// compilation, so the width is pinned against FLEXVEC_VL overrides.
core::PipelineResult compileAt512(const ir::LoopFunction &F,
                                  unsigned RtmTile) {
  driver::DriverOptions Opts;
  Opts.RtmTile = RtmTile;
  Opts.Vec = isa::VectorConfig();
  return driver::compileLoop(F, Opts);
}

std::string readFile(const std::string &Path, bool *Ok = nullptr) {
  std::ifstream In(Path);
  if (Ok)
    *Ok = In.good();
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string sanitized(const std::string &Name) {
  std::string Out = Name;
  for (char &C : Out)
    if (C == '.')
      C = '_';
  return Out;
}

/// Points at the first differing line so CI logs read like a diff hunk.
void expectGoldenEq(const std::string &Golden, const std::string &Actual,
                    const std::string &GoldenPath) {
  if (Golden == Actual)
    return;
  std::istringstream G(Golden), A(Actual);
  std::string GLine, ALine;
  int Line = 1;
  while (true) {
    bool HasG = static_cast<bool>(std::getline(G, GLine));
    bool HasA = static_cast<bool>(std::getline(A, ALine));
    if (!HasG && !HasA)
      break;
    if (!HasG || !HasA || GLine != ALine) {
      FAIL() << GoldenPath << ":" << Line << ": first difference\n"
             << "  golden: " << (HasG ? GLine : "<eof>") << "\n"
             << "  actual: " << (HasA ? ALine : "<eof>") << "\n"
             << "regenerate with FLEXVEC_UPDATE_GOLDEN=1 if intentional";
      return;
    }
    ++Line;
  }
  FAIL() << GoldenPath << ": contents differ only in trailing whitespace";
}

void checkGolden(const std::string &Path, const std::string &Actual) {
  if (std::getenv("FLEXVEC_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    return;
  }
  bool Ok = false;
  std::string Golden = readFile(Path, &Ok);
  ASSERT_TRUE(Ok) << "missing golden file " << Path
                  << " (generate with FLEXVEC_UPDATE_GOLDEN=1)";
  expectGoldenEq(Golden, Actual, Path);
}

class KernelFamilies : public ::testing::Test {
protected:
  static std::vector<Benchmark> &rows() {
    static std::vector<Benchmark> R = workloads::buildFamilyBenchmarks(1.0);
    return R;
  }
};

TEST_F(KernelFamilies, HasBothFamiliesWithAtLeastSixRows) {
  size_t Poly = 0, Irreg = 0;
  for (const Benchmark &B : rows()) {
    if (B.Group == "POLY")
      ++Poly;
    else if (B.Group == "IRREG")
      ++Irreg;
  }
  EXPECT_GE(Poly, 3u);
  EXPECT_GE(Irreg, 3u);
  EXPECT_GE(Poly + Irreg, 6u);
  EXPECT_EQ(Poly + Irreg, rows().size());
}

TEST_F(KernelFamilies, SuiteAppendsFamiliesAfterTable2) {
  workloads::Figure8Suite Suite = workloads::buildFigure8Suite(0.1);
  ASSERT_EQ(Suite.Workloads.size(), 18u + rows().size());
  // The first 18 rows stay the Table 2 corpus in order (their per-cell
  // input seeds derive from the names, so names moving would invalidate
  // the bench baseline).
  for (size_t I = 0; I < 18; ++I)
    EXPECT_TRUE(Suite.Workloads[I].Group == "SPEC" ||
                Suite.Workloads[I].Group == "APPS")
        << Suite.Workloads[I].Name;
  for (size_t I = 18; I < Suite.Workloads.size(); ++I)
    EXPECT_TRUE(Suite.Workloads[I].Group == "POLY" ||
                Suite.Workloads[I].Group == "IRREG")
        << Suite.Workloads[I].Name;
}

// The fuzzer's full contract — DSL round trip, vectorizable plan, no
// silent declines, six-variant differential, conflict-storm equivalence —
// applied to every family row with its own input plan.
TEST_F(KernelFamilies, EveryRowPassesTheDifferentialContract) {
  for (const Benchmark &B : rows()) {
    gen::CheckOptions CO;
    CO.MinTrip = 1;
    CO.MaxTrip = 256; // Differential rounds; the sweep covers full trips.
    CO.Inputs.IndexBound = 128;
    CO.Inputs.IndexMask = 255;
    CO.StormSeed = deriveStreamSeed(fnv1a64(B.Name), 0x57);
    gen::CheckResult R = gen::checkLoop(*B.F, fnv1a64(B.Name), CO);
    EXPECT_TRUE(R.ok()) << B.Name << ": " << gen::failureClassName(R.Class)
                        << (R.Variant.empty() ? "" : " in ") << R.Variant
                        << "\n"
                        << R.Detail;
  }
}

// POLY rows are the affine anchor: the traditional vectorizer must accept
// them (a decline there would mean the affine matcher regressed).
TEST_F(KernelFamilies, PolyRowsGenerateTraditional) {
  for (const Benchmark &B : rows()) {
    if (B.Group != "POLY")
      continue;
    core::PipelineResult PR = compileAt512(*B.F, /*RtmTile=*/64);
    ASSERT_TRUE(PR.Plan.Vectorizable) << B.Name << ": " << PR.Plan.Reason;
    if (B.Kind == workloads::KernelKind::Affine) {
      EXPECT_TRUE(PR.Traditional.has_value())
          << B.Name << ": affine family kernel must vectorize traditionally";
    }
    EXPECT_TRUE(PR.FlexVec.has_value()) << B.Name;
  }
}

// Storm demotion, abort-conditional: a family adaptive program that
// suffers aborts under the storm must demote exactly once and stay
// bit-exact; one that never opens a transaction (possible for affine
// rows) must never demote — and must still stay bit-exact.
TEST_F(KernelFamilies, StormDemotionMatchesAbortActivity) {
  for (const Benchmark &B : rows()) {
    core::PipelineResult PR = compileAt512(*B.F, /*RtmTile=*/64);
    if (!PR.Adaptive)
      continue;
    Rng R(deriveStreamSeed(77, fnv1a64(B.Name)));
    workloads::BenchInstance In = B.Gen(R);
    ASSERT_FALSE(In.Invocations.empty()) << B.Name;
    for (size_t I = 0; In.Invocations.size() < 12; ++I)
      In.Invocations.push_back(In.Invocations[I % In.Invocations.size()]);

    core::FaultPlan Plan;
    Plan.Tx.Seed = fnv1a64(B.Name);
    Plan.Tx.AbortProb = 0.75;
    Plan.Tx.Reason = rtm::AbortReason::Conflict;
    core::DiffVerdict V = core::runDifferentialMulti(
        *B.F, PR.Scalar, *PR.Adaptive, In.Image, In.Invocations, Plan);
    ASSERT_TRUE(V.Equivalent) << B.Name << ": " << V.describe();
    ASSERT_TRUE(V.Vector.Outcome.HasDispatch) << B.Name;
    const driver::DispatchCounts &D = V.Vector.Outcome.Dispatch;
    if (D.AbortEvents > 0) {
      EXPECT_EQ(D.Demotions, 1u)
          << B.Name << ": aborting family kernel must demote";
      EXPECT_EQ(D.State, 1u) << B.Name;
    } else {
      EXPECT_EQ(D.Demotions, 0u)
          << B.Name << ": no aborts, nothing to demote";
    }
  }
}

//===----------------------------------------------------------------------===//
// Goldens: the remark stream and the FlexVec disassembly of every family
// kernel, pinned under tests/golden/families/.
//===----------------------------------------------------------------------===//

TEST_F(KernelFamilies, RemarksMatchGolden) {
  for (const Benchmark &B : rows()) {
    core::PipelineResult PR = compileAt512(*B.F, /*RtmTile=*/64);
    checkGolden(std::string(FLEXVEC_SOURCE_DIR) + "/tests/golden/families/" +
                    sanitized(B.Name) + ".remarks.json",
                PR.Remarks.toJson().dump());
  }
}

TEST_F(KernelFamilies, FlexVecDisassemblyMatchesGolden) {
  for (const Benchmark &B : rows()) {
    core::PipelineResult PR = compileAt512(*B.F, /*RtmTile=*/64);
    ASSERT_TRUE(PR.FlexVec) << B.Name;
    checkGolden(std::string(FLEXVEC_SOURCE_DIR) + "/tests/golden/families/" +
                    sanitized(B.Name) + ".flexvec.s",
                PR.FlexVec->Prog.disassemble());
  }
}

} // namespace
