//===- tests/AsmParserTest.cpp - Assembler round-trip tests ----------------===//
//
// Every program the code generators emit must survive a
// disassemble → assemble round trip bit-for-bit in behaviour, and
// hand-written assembly must execute as written.
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "emu/Machine.h"
#include "isa/AsmParser.h"
#include "workloads/PaperLoops.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::isa;

TEST(AsmParser, HandWrittenSumLoop) {
  AsmResult R = assembleProgram(R"(
        movimm r1, 0          ; i
        movimm r2, 0          ; sum
  head: cmpi.lt r3, r1, 10
        brz r3, @done
        add r2, r2, r1
        addi r1, r1, 1
        jmp @head
  done: halt
)");
  ASSERT_TRUE(R) << R.Error;
  mem::Memory M;
  emu::Machine Mach(M);
  emu::ExecResult E = Mach.run(R.Prog);
  EXPECT_EQ(E.Reason, emu::StopReason::Halted);
  EXPECT_EQ(Mach.getScalar(2), 45);
}

TEST(AsmParser, FlexVecInstructionsParse) {
  AsmResult R = assembleProgram(R"(
    kset k1, 65535
    kset k3, 16
    kftm.exc.i32 k2, {k1}, k3
    kftm.inc.i32 k4, {k1}, k3
    vindex.i32 v1, r1
    vpslctlast.i32 v2, {k2}, v1
    vpconflictm.i32 k5, {k1}, v1, v1
    ktest r5, k5
    halt
)");
  ASSERT_TRUE(R) << R.Error;
  mem::Memory M;
  emu::Machine Mach(M);
  ASSERT_EQ(Mach.run(R.Prog).Reason, emu::StopReason::Halted);
  EXPECT_EQ(Mach.getMask(2), 0xFu);     // exc: lanes before bit 4
  EXPECT_EQ(Mach.getMask(4), 0x1Fu);    // inc: through bit 4
  EXPECT_EQ(Mach.getScalar(5), 0);      // iota never self-conflicts
}

TEST(AsmParser, MemoryOperandsWithScaleAndDisp) {
  AsmResult R = assembleProgram(R"(
    movimm r1, 4096
    movimm r2, 3
    movimm r3, 77
    store.i32 [r1 + r2*4 + 8], r3
    load.i32 r4, [r1 + r2*4 + 8]
    halt
)");
  ASSERT_TRUE(R) << R.Error;
  mem::Memory M;
  M.map(4096, 4096);
  emu::Machine Mach(M);
  ASSERT_EQ(Mach.run(R.Prog).Reason, emu::StopReason::Halted);
  EXPECT_EQ(Mach.getScalar(4), 77);
  EXPECT_EQ(M.get<int32_t>(4096 + 12 + 8), 77);
}

TEST(AsmParser, Diagnostics) {
  EXPECT_FALSE(assembleProgram("frobnicate r1, r2"));
  EXPECT_FALSE(assembleProgram("add r1, r2, r3, r4, r5"));
  EXPECT_FALSE(assembleProgram("jmp @nowhere"));
  EXPECT_FALSE(assembleProgram("add r99, r1, r2"));
  AsmResult R = assembleProgram("movimm r1, zzz");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("line 1"), std::string::npos) << R.Error;
}

namespace {

/// Disassemble → assemble → compare behaviour on real inputs.
void roundTrip(const ir::LoopFunction &F, const codegen::CompiledLoop &CL,
               const mem::Memory &Image, const ir::Bindings &B) {
  std::string Text = CL.Prog.disassemble();
  AsmResult R = assembleProgram(Text);
  ASSERT_TRUE(R) << R.Error << "\n" << Text;
  ASSERT_EQ(R.Prog.size(), CL.Prog.size());

  codegen::CompiledLoop Reassembled = CL;
  Reassembled.Prog = R.Prog;
  core::RunOutcome A = core::runProgram(CL, Image, B);
  core::RunOutcome C = core::runProgram(Reassembled, Image, B);
  ASSERT_TRUE(A.Ok && C.Ok);
  EXPECT_TRUE(core::outcomesMatch(F, A, C));
}

} // namespace

TEST(AsmParser, RoundTripsGeneratedPrograms) {
  {
    auto F = workloads::buildH264Loop();
    core::PipelineResult PR = core::compileLoop(*F);
    Rng R(61);
    workloads::LoopInputs In = workloads::genH264Inputs(*F, R, 500, 0.05);
    roundTrip(*F, PR.Scalar, In.Image, In.B);
    roundTrip(*F, *PR.FlexVec, In.Image, In.B);
    roundTrip(*F, *PR.Rtm, In.Image, In.B);
  }
  {
    auto F = workloads::buildConflictLoop();
    core::PipelineResult PR = core::compileLoop(*F);
    Rng R(62);
    workloads::LoopInputs In = workloads::genConflictInputs(*F, R, 500, 0.3,
                                                            128);
    roundTrip(*F, *PR.FlexVec, In.Image, In.B);
    roundTrip(*F, *PR.Speculative, In.Image, In.B);
  }
  {
    auto F = workloads::buildEarlyExitLoop();
    core::PipelineResult PR = core::compileLoop(*F);
    Rng R(63);
    workloads::LoopInputs In = workloads::genEarlyExitInputs(*F, R, 500, 313);
    roundTrip(*F, *PR.FlexVec, In.Image, In.B);
  }
}

TEST(AsmParser, RoundTripPreservesInstructionIdentity) {
  auto F = workloads::buildConflictLoop();
  core::PipelineResult PR = core::compileLoop(*F);
  AsmResult R = assembleProgram(PR.FlexVec->Prog.disassemble());
  ASSERT_TRUE(R) << R.Error;
  for (size_t I = 0; I < R.Prog.size(); ++I) {
    const Instruction &A = PR.FlexVec->Prog[I];
    const Instruction &C = R.Prog[I];
    EXPECT_EQ(A.Op, C.Op) << "instr " << I;
    EXPECT_EQ(A.Type, C.Type) << "instr " << I;
    EXPECT_EQ(A.Dst, C.Dst) << "instr " << I;
    EXPECT_EQ(A.Src1, C.Src1) << "instr " << I;
    EXPECT_EQ(A.Src2, C.Src2) << "instr " << I;
    EXPECT_EQ(A.Src3, C.Src3) << "instr " << I;
    EXPECT_EQ(A.MaskReg, C.MaskReg) << "instr " << I;
    EXPECT_EQ(A.Imm, C.Imm) << "instr " << I;
    EXPECT_EQ(A.Scale, C.Scale) << "instr " << I;
    EXPECT_EQ(A.Disp, C.Disp) << "instr " << I;
    EXPECT_EQ(A.Target, C.Target) << "instr " << I;
  }
}
