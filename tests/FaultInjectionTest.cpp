//===- tests/FaultInjectionTest.cpp - Differential fault tolerance ---------===//
//
// The acceptance bar for the fault-injection subsystem: under a seeded
// fault schedule, scalar and FlexVec executions of the paper's three loop
// patterns (conditional scalar update, cross-iteration memory dependency,
// early termination) reach equivalent architectural outcomes — identical
// memory fingerprints and live-outs, or identical structured fault
// reports — and no injected fault (nested transactions, a thousand
// consecutive RTM aborts, ...) terminates the host process.
//
//===----------------------------------------------------------------------===//

#include "core/FaultHarness.h"
#include "core/Pipeline.h"
#include "emu/Machine.h"
#include "faults/FaultInjector.h"
#include "isa/Program.h"
#include "support/Random.h"
#include "workloads/PaperLoops.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::isa;

namespace {

/// One paper loop with generated inputs and every compiled variant.
struct LoopCase {
  std::string Name;
  std::unique_ptr<ir::LoopFunction> F;
  workloads::LoopInputs In;
  core::PipelineResult PR;
};

std::vector<LoopCase> buildPaperLoops(uint64_t Seed, int64_t N = 200) {
  std::vector<LoopCase> Cases;
  {
    LoopCase C;
    C.Name = "h264";
    C.F = workloads::buildH264Loop();
    Rng R(Seed);
    C.In = workloads::genH264Inputs(*C.F, R, N, /*UpdateProb=*/0.2);
    C.PR = core::compileLoop(*C.F);
    Cases.push_back(std::move(C));
  }
  {
    LoopCase C;
    C.Name = "conflict";
    C.F = workloads::buildConflictLoop();
    Rng R(Seed + 1);
    C.In = workloads::genConflictInputs(*C.F, R, N, /*ConflictProb=*/0.2);
    C.PR = core::compileLoop(*C.F);
    Cases.push_back(std::move(C));
  }
  {
    LoopCase C;
    C.Name = "early-exit";
    C.F = workloads::buildEarlyExitLoop();
    Rng R(Seed + 2);
    C.In = workloads::genEarlyExitInputs(*C.F, R, N, /*MatchPos=*/N - 20);
    C.PR = core::compileLoop(*C.F);
    Cases.push_back(std::move(C));
  }
  return Cases;
}

/// All vectorized variants of a case, labeled.
std::vector<std::pair<std::string, const codegen::CompiledLoop *>>
vectorVariants(const LoopCase &C) {
  std::vector<std::pair<std::string, const codegen::CompiledLoop *>> Out;
  if (C.PR.FlexVec)
    Out.push_back({"flexvec", &*C.PR.FlexVec});
  if (C.PR.FlexVecOpt)
    Out.push_back({"flexvec-opt", &*C.PR.FlexVecOpt});
  if (C.PR.Rtm)
    Out.push_back({"rtm", &*C.PR.Rtm});
  return Out;
}

} // namespace

TEST(FaultDifferential, CleanRunsAreEquivalent) {
  for (LoopCase &C : buildPaperLoops(11)) {
    core::FaultPlan Plan; // Nothing injected.
    for (auto &[VarName, CL] : vectorVariants(C)) {
      core::DiffVerdict V =
          core::runDifferential(*C.F, C.PR.Scalar, *CL, C.In.Image, C.In.B,
                                Plan);
      EXPECT_TRUE(V.Equivalent)
          << C.Name << "/" << VarName << ": " << V.describe();
      EXPECT_TRUE(V.Scalar.Outcome.Ok);
      EXPECT_TRUE(V.Vector.Outcome.Ok);
    }
  }
}

// Persistent, address-deterministic range faults aimed at one array at a
// time: the same data addresses are poisoned in the scalar and the vector
// run, so either both executions absorb the faults (first-faulting clips,
// RTM fallback) and agree on final state, or both stop with the same
// fault report (reason + address).
TEST(FaultDifferential, PersistentRangeFaultsInEachArray) {
  uint64_t Injected = 0, Faulted = 0, Completed = 0;
  for (uint64_t Seed : {101u, 202u, 303u}) {
    for (LoopCase &C : buildPaperLoops(Seed)) {
      for (size_t Arr = 0; Arr < C.In.B.ArrayBases.size(); ++Arr) {
        uint64_t Base = C.In.B.ArrayBases[Arr];
        core::FaultPlan Plan;
        Plan.Mem.Seed = Seed * 7 + Arr;
        Plan.Mem.Ranges.push_back({Base, Base + mem::PageSize, /*Prob=*/0.06,
                                   faults::FaultDuration::Persistent});
        for (auto &[VarName, CL] : vectorVariants(C)) {
          core::DiffVerdict V = core::runDifferential(
              *C.F, C.PR.Scalar, *CL, C.In.Image, C.In.B, Plan);
          EXPECT_TRUE(V.Equivalent)
              << C.Name << "/" << VarName << " array " << Arr << " seed "
              << Seed << ": " << V.describe();
          Injected += V.Scalar.Injection.MemFaultsInjected;
          (V.Scalar.Outcome.Ok ? Completed : Faulted) += 1;
        }
      }
    }
  }
  // The schedule matrix must actually exercise both outcomes.
  EXPECT_GT(Injected, 0u);
  EXPECT_GT(Faulted, 0u);
  EXPECT_GT(Completed, 0u);
}

// Injected RTM aborts never reach the scalar program (it has no
// transactions); the RTM variant retries or falls back, and both sides
// must still agree on the final state.
TEST(FaultDifferential, InjectedTxAbortsAreAbsorbedByRetryAndFallback) {
  bool SawRtm = false;
  for (uint64_t Seed : {5u, 6u}) {
    for (LoopCase &C : buildPaperLoops(Seed)) {
      if (!C.PR.Rtm)
        continue;
      SawRtm = true;
      for (rtm::AbortReason Reason :
           {rtm::AbortReason::Conflict, rtm::AbortReason::Capacity,
            rtm::AbortReason::Spurious}) {
        core::FaultPlan Plan;
        Plan.Tx.Seed = Seed;
        Plan.Tx.AbortProb = 0.3;
        Plan.Tx.Reason = Reason;
        core::DiffVerdict V = core::runDifferential(
            *C.F, C.PR.Scalar, *C.PR.Rtm, C.In.Image, C.In.B, Plan);
        EXPECT_TRUE(V.Equivalent)
            << C.Name << "/rtm reason=" << rtm::abortReasonName(Reason)
            << " seed " << Seed << ": " << V.describe();
        EXPECT_GT(V.Vector.Injection.TxAbortsInjected, 0u)
            << C.Name << ": the schedule must actually abort transactions";
      }
    }
  }
  EXPECT_TRUE(SawRtm) << "no loop produced an RTM variant";
}

// --- Adaptive dispatch under fault storms ---------------------------------===//

namespace {

/// The paper loops as multi-invocation sequences long enough to cross the
/// adaptive demotion window.
std::vector<ir::Bindings> repeated(const ir::Bindings &B, size_t Count) {
  return std::vector<ir::Bindings>(Count, B);
}

} // namespace

// A spurious-abort storm raging while invocations pass the preheader
// guard: the adaptive program must charge the aborts, demote inside the
// window, and stay bit-identical to scalar throughout.
TEST(FaultDifferential, SpuriousAbortStormDuringGuardedInvocationsDemotes) {
  for (LoopCase &C : buildPaperLoops(31)) {
    if (!C.PR.Adaptive || !C.PR.Rtm) // Tx storms need a transactional side.
      continue;
    core::FaultPlan Plan;
    Plan.Tx.Seed = 31;
    Plan.Tx.AbortProb = 0.9;
    Plan.Tx.Reason = rtm::AbortReason::Spurious;
    std::vector<ir::Bindings> Invocations = repeated(C.In.B, 12);
    core::DiffVerdict V = core::runDifferentialMulti(
        *C.F, C.PR.Scalar, *C.PR.Adaptive, C.In.Image, Invocations, Plan);
    ASSERT_TRUE(V.Equivalent) << C.Name << ": " << V.describe();
    ASSERT_TRUE(V.Vector.Outcome.HasDispatch) << C.Name;
    const driver::DispatchCounts &D = V.Vector.Outcome.Dispatch;
    EXPECT_GT(D.GuardPass, 0u)
        << C.Name << ": the storm must hit guard-passing invocations";
    EXPECT_EQ(D.Demotions, 1u) << C.Name;
    EXPECT_EQ(D.State, 1u) << C.Name;
  }
}

// A storm that ends right after demotion: the program must NOT re-promote
// when the weather clears — demotion is permanent for the program's
// lifetime — and the final state must still be exact.
TEST(FaultDifferential, DemoteThenRecoverStaysDemotedAndExact) {
  for (LoopCase &C : buildPaperLoops(32)) {
    if (!C.PR.Adaptive || !C.PR.Rtm)
      continue;
    core::FaultPlan Plan;
    Plan.Tx.Seed = 32;
    Plan.Tx.AbortProb = 1.0;
    Plan.Tx.Reason = rtm::AbortReason::Conflict;
    // Enough injections to abort every tile of the first ~9 invocations
    // (driving demotion), then the storm ends and the world is calm for
    // the remaining invocations.
    Plan.Tx.MaxInjected = 2000;
    std::vector<ir::Bindings> Invocations = repeated(C.In.B, 16);
    core::DiffVerdict V = core::runDifferentialMulti(
        *C.F, C.PR.Scalar, *C.PR.Adaptive, C.In.Image, Invocations, Plan);
    ASSERT_TRUE(V.Equivalent) << C.Name << ": " << V.describe();
    ASSERT_TRUE(V.Vector.Outcome.HasDispatch) << C.Name;
    const driver::DispatchCounts &D = V.Vector.Outcome.Dispatch;
    EXPECT_EQ(D.Demotions, 1u)
        << C.Name << ": one demotion, no flapping after the storm ends";
    EXPECT_EQ(D.State, 1u)
        << C.Name << ": must stay demoted once the abort budget was burned";
  }
}

// --- Resilience policy, machine level ------------------------------------===//

namespace {

class ResilienceTest : public ::testing::Test {
protected:
  mem::Memory M;
  emu::Machine Mach{M};

  void SetUp() override { M.map(0x1000, 4 * mem::PageSize); }
};

} // namespace

TEST_F(ResilienceTest, NestedTransactionIsArchitecturalAbortNotProcessDeath) {
  ProgramBuilder B;
  auto OuterAbort = B.createLabel();
  auto InnerAbort = B.createLabel();
  auto Done = B.createLabel();
  B.movImm(Reg::scalar(1), 0x1000);
  B.movImm(Reg::scalar(2), 111); // Rolled back to 111 on abort.
  B.xbegin(OuterAbort);
  B.movImm(Reg::scalar(2), 222);
  B.movImm(Reg::scalar(3), 9);
  B.store(ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0, Reg::scalar(3));
  B.xbegin(InnerAbort); // Nested XBEGIN: aborts the running transaction.
  B.movImm(Reg::scalar(4), 1);
  B.xend();
  B.jmp(Done);
  B.bind(InnerAbort);
  B.movImm(Reg::scalar(5), 1); // Must never run: the OUTER target is taken.
  B.jmp(Done);
  B.bind(OuterAbort);
  B.movImm(Reg::scalar(6), 1);
  B.bind(Done);
  B.halt();
  emu::ExecResult R = Mach.run(B.finalize());
  ASSERT_EQ(R.Reason, emu::StopReason::Halted);
  EXPECT_EQ(Mach.getScalar(2), 111) << "register rollback";
  EXPECT_EQ(Mach.getScalar(4), 0);
  EXPECT_EQ(Mach.getScalar(5), 0) << "inner abort target must not be taken";
  EXPECT_EQ(Mach.getScalar(6), 1) << "outer abort handler ran";
  EXPECT_EQ(M.get<int32_t>(0x1000), 0) << "memory rollback";
  EXPECT_EQ(Mach.txStats().AbortsNested, 1u);
  ASSERT_EQ(R.AbortHistory.size(), 1u);
  EXPECT_EQ(R.AbortHistory[0], rtm::AbortReason::Nested);
}

TEST_F(ResilienceTest, ThousandConsecutiveAbortsFallBackAndSurvive) {
  faults::TxFaultPlan TxPlan;
  TxPlan.AbortProb = 1.0; // Every transactional operation aborts.
  TxPlan.Reason = rtm::AbortReason::Conflict;
  faults::FaultInjector Inj(faults::MemFaultPlan(), TxPlan);
  Inj.arm(M, &Mach.tx());

  // for (i = 0; i < 1000; ++i) { XBEGIN; store; XEND } with the abort
  // handler counting fallbacks in r3.
  ProgramBuilder B;
  auto Header = B.createLabel();
  auto Abort = B.createLabel();
  auto Cont = B.createLabel();
  auto Exit = B.createLabel();
  B.movImm(Reg::scalar(1), 0x1100);
  B.movImm(Reg::scalar(2), 0); // i
  B.movImm(Reg::scalar(3), 0); // fallback count
  B.movImm(Reg::scalar(5), 7);
  B.bind(Header);
  B.cmpImm(Reg::scalar(4), CmpKind::LT, Reg::scalar(2), 1000);
  B.brZero(Reg::scalar(4), Exit);
  B.xbegin(Abort);
  B.store(ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0, Reg::scalar(5));
  B.xend();
  B.jmp(Cont);
  B.bind(Abort);
  B.binOpImm(Opcode::AddImm, Reg::scalar(3), Reg::scalar(3), 1);
  B.bind(Cont);
  B.binOpImm(Opcode::AddImm, Reg::scalar(2), Reg::scalar(2), 1);
  B.jmp(Header);
  B.bind(Exit);
  B.halt();

  emu::RunLimits Limits;
  Limits.MaxRtmRetries = 4;
  emu::ExecResult R = Mach.run(B.finalize(), Limits);
  ASSERT_EQ(R.Reason, emu::StopReason::Halted)
      << "a storm of aborts must degrade to the fallback path, not kill "
         "the run: "
      << R.describe();
  EXPECT_EQ(Mach.getScalar(3), 1000) << "every iteration fell back";
  EXPECT_EQ(R.Stats.RtmFallbacks, 1000u);
  EXPECT_EQ(R.Stats.RtmBudgetExhausted, 1000u)
      << "every fallback here came from burning the retry budget";
  EXPECT_EQ(R.Stats.RtmRetries, 4000u) << "4 bounded retries per iteration";
  EXPECT_GT(R.Stats.BackoffCycles, 0u);
  EXPECT_EQ(Inj.stats().TxAbortsInjected, 5000u);
  EXPECT_EQ(M.get<int32_t>(0x1100), 0) << "no aborted store ever committed";
  EXPECT_EQ(R.AbortHistory.size(), emu::ExecResult::MaxAbortHistory);
}

TEST_F(ResilienceTest, RetryableAbortsEventuallyCommit) {
  faults::TxFaultPlan TxPlan;
  TxPlan.AbortProb = 1.0;
  TxPlan.Reason = rtm::AbortReason::Conflict;
  TxPlan.MaxInjected = 2; // Transient storm: first two attempts abort.
  faults::FaultInjector Inj(faults::MemFaultPlan(), TxPlan);
  Inj.arm(M, &Mach.tx());

  ProgramBuilder B;
  auto Abort = B.createLabel();
  auto Done = B.createLabel();
  B.movImm(Reg::scalar(1), 0x1000);
  B.movImm(Reg::scalar(3), 42);
  B.xbegin(Abort);
  B.store(ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0, Reg::scalar(3));
  B.xend();
  B.jmp(Done);
  B.bind(Abort);
  B.movImm(Reg::scalar(4), 1);
  B.bind(Done);
  B.halt();

  emu::RunLimits Limits;
  Limits.MaxRtmRetries = 4;
  emu::ExecResult R = Mach.run(B.finalize(), Limits);
  ASSERT_EQ(R.Reason, emu::StopReason::Halted);
  EXPECT_EQ(Mach.getScalar(4), 0) << "fallback must not be taken";
  EXPECT_EQ(M.get<int32_t>(0x1000), 42) << "third attempt committed";
  EXPECT_EQ(R.Stats.RtmRetries, 2u);
  EXPECT_EQ(R.Stats.RtmFallbacks, 0u);
  EXPECT_EQ(R.Stats.BackoffCycles, (1u << 1) + (1u << 2))
      << "exponential backoff across the two retries";
  EXPECT_EQ(Mach.txStats().Commits, 1u);
  EXPECT_EQ(Mach.txStats().AbortsByConflict, 2u);
}

TEST_F(ResilienceTest, NonRetryableAbortDispatchesStraightToFallback) {
  faults::TxFaultPlan TxPlan;
  TxPlan.AbortNthOp = 1;
  TxPlan.Reason = rtm::AbortReason::Capacity; // Deterministic: no retry.
  faults::FaultInjector Inj(faults::MemFaultPlan(), TxPlan);
  Inj.arm(M, &Mach.tx());

  ProgramBuilder B;
  auto Abort = B.createLabel();
  auto Done = B.createLabel();
  B.movImm(Reg::scalar(1), 0x1000);
  B.movImm(Reg::scalar(3), 42);
  B.xbegin(Abort);
  B.store(ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0, Reg::scalar(3));
  B.xend();
  B.jmp(Done);
  B.bind(Abort);
  // The fallback does the work non-transactionally.
  B.store(ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0, Reg::scalar(3));
  B.movImm(Reg::scalar(4), 1);
  B.bind(Done);
  B.halt();

  emu::ExecResult R = Mach.run(B.finalize());
  ASSERT_EQ(R.Reason, emu::StopReason::Halted);
  EXPECT_EQ(Mach.getScalar(4), 1) << "fallback taken";
  EXPECT_EQ(M.get<int32_t>(0x1000), 42) << "fallback completed the work";
  EXPECT_EQ(R.Stats.RtmRetries, 0u) << "capacity aborts are not retried";
  EXPECT_EQ(R.Stats.RtmFallbacks, 1u);
}

TEST_F(ResilienceTest, TransientMemFaultInsideTxHealsForTheFallback) {
  M.set<int32_t>(0x1000, 77);
  faults::MemFaultPlan MemPlan;
  MemPlan.Ranges.push_back({0x1000, 0x1040, 1.0,
                            faults::FaultDuration::Transient});
  faults::FaultInjector Inj(MemPlan);
  Inj.arm(M, &Mach.tx());

  // The transactional load hits the (transient) fault, aborts the
  // transaction, and the fallback's non-transactional reload succeeds
  // because the line has healed.
  ProgramBuilder B;
  auto Abort = B.createLabel();
  auto Done = B.createLabel();
  B.movImm(Reg::scalar(1), 0x1000);
  B.xbegin(Abort);
  B.load(Reg::scalar(2), ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0);
  B.xend();
  B.jmp(Done);
  B.bind(Abort);
  B.load(Reg::scalar(3), ElemType::I32, Reg::scalar(1), Reg::none(), 1, 0);
  B.movImm(Reg::scalar(4), 1);
  B.bind(Done);
  B.halt();

  emu::ExecResult R = Mach.run(B.finalize());
  ASSERT_EQ(R.Reason, emu::StopReason::Halted) << R.describe();
  EXPECT_EQ(Mach.getScalar(4), 1) << "fault abort dispatched to fallback";
  EXPECT_EQ(Mach.getScalar(3), 77) << "healed line readable in fallback";
  EXPECT_EQ(Mach.txStats().AbortsByFault, 1u);
  EXPECT_EQ(Inj.stats().MemFaultsInjected, 1u);
}

// --- Harness-level structured reports ------------------------------------===//

TEST(FaultHarness, BudgetWatchdogProducesStructuredDiagnostics) {
  std::vector<LoopCase> Cases = buildPaperLoops(21);
  LoopCase &C = Cases[0];
  core::FaultPlan Plan;
  Plan.MaxInstructions = 50; // Far below what the loop needs.
  core::FaultedRun Run =
      core::runProgramWithFaults(C.PR.Scalar, C.In.Image, C.In.B, Plan);
  EXPECT_FALSE(Run.Outcome.Ok);
  EXPECT_EQ(Run.Outcome.Exec.Reason, emu::StopReason::BudgetExceeded);
  EXPECT_EQ(Run.Outcome.Exec.Stats.Instructions, 50u);
  EXPECT_NE(Run.report().find("budget-exceeded"), std::string::npos)
      << Run.report();
  EXPECT_NE(Run.report().find("pc="), std::string::npos) << Run.report();
}

TEST(FaultHarness, FailNthAccessYieldsStructuredFaultReport) {
  std::vector<LoopCase> Cases = buildPaperLoops(22);
  LoopCase &C = Cases[0];
  core::FaultPlan Plan;
  Plan.Mem.FailNthAccess = 7;
  core::FaultedRun Run =
      core::runProgramWithFaults(C.PR.Scalar, C.In.Image, C.In.B, Plan);
  EXPECT_FALSE(Run.Outcome.Ok);
  EXPECT_EQ(Run.Outcome.Exec.Reason, emu::StopReason::Fault);
  EXPECT_EQ(Run.Injection.MemFaultsInjected, 1u);
  EXPECT_NE(Run.Outcome.Exec.FaultAddr, 0u);
  EXPECT_NE(Run.report().find("fault"), std::string::npos) << Run.report();
}
