//===- bench/bench_vpl.cpp - Vector Partitioning Loop anatomy --------------===//
//
// Instruments the partial vector execution machinery itself: for the
// h264ref conditional-update loop and the Figure 2 conflict loop, counts
// how many VPL iterations each vector chunk needs as the dependence
// probability varies (Section 3.1: "the VPL will be iterated as many
// times as needed to correctly process all scalar lanes"), and reports
// the dynamic FlexVec-instruction footprint of the generated code.
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "support/Table.h"
#include "workloads/PaperLoops.h"

#include <cstdio>

using namespace flexvec;
using namespace flexvec::workloads;
using isa::Opcode;

namespace {

struct VplStats {
  double AvgVplItersPerChunk;
  double MaxTheoretical;
  uint64_t Kftm, Slct, Conflict, FF;
};

/// The number of KFTM executions per chunk equals the number of VPL
/// iterations (one per round), so the dynamic opcode counts expose the
/// distribution directly.
VplStats measure(const ir::LoopFunction &F, const codegen::CompiledLoop &CL,
                 const mem::Memory &Image, const ir::Bindings &B,
                 unsigned VL) {
  core::RunOutcome Out = core::runProgram(CL, Image, B);
  const emu::ExecStats &S = Out.Exec.Stats;
  uint64_t Kftm = S.countOf(Opcode::KFtmExc) + S.countOf(Opcode::KFtmInc);
  int64_t Trip = B.getInt(F.tripCountScalar());
  double Chunks = static_cast<double>(Trip) / VL;
  VplStats V;
  V.AvgVplItersPerChunk = static_cast<double>(Kftm) / Chunks;
  V.MaxTheoretical = VL;
  V.Kftm = Kftm;
  V.Slct = S.countOf(Opcode::VSlctLast);
  V.Conflict = S.countOf(Opcode::VConflictM);
  V.FF = S.countOf(Opcode::VGatherFF) + S.countOf(Opcode::VMovFF);
  return V;
}

} // namespace

int main() {
  std::printf("Vector Partitioning Loop anatomy (Sections 3.1, 4.2, 4.3)\n\n");

  const double Probs[] = {0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0};

  {
    auto F = buildH264Loop();
    core::PipelineResult PR = core::compileLoop(*F);
    std::printf("== conditional update (h264ref, VL=16, trip=20000) ==\n");
    TextTable T({"update prob", "VPL iters/chunk", "KFTM execs",
                 "VPSLCTLAST execs", "FF loads"});
    for (double P : Probs) {
      Rng R(21);
      LoopInputs In = genH264Inputs(*F, R, 20000, P);
      VplStats V = measure(*F, *PR.FlexVec, In.Image, In.B, 16);
      T.addRow({TextTable::fmt(P, 2), TextTable::fmt(V.AvgVplItersPerChunk, 2),
                TextTable::fmtInt(static_cast<long long>(V.Kftm)),
                TextTable::fmtInt(static_cast<long long>(V.Slct)),
                TextTable::fmtInt(static_cast<long long>(V.FF))});
    }
    T.print();
    std::printf("\n");
  }

  {
    auto F = buildConflictLoop();
    core::PipelineResult PR = core::compileLoop(*F);
    std::printf("== memory conflict (Figure 2 loop, VL=16, trip=20000) ==\n");
    TextTable T({"conflict prob", "VPL iters/chunk", "KFTM execs",
                 "VPCONFLICTM execs"});
    for (double P : Probs) {
      Rng R(22);
      LoopInputs In = genConflictInputs(*F, R, 20000, P, 512);
      VplStats V = measure(*F, *PR.FlexVec, In.Image, In.B, 16);
      T.addRow({TextTable::fmt(P, 2), TextTable::fmt(V.AvgVplItersPerChunk, 2),
                TextTable::fmtInt(static_cast<long long>(V.Kftm)),
                TextTable::fmtInt(static_cast<long long>(V.Conflict))});
    }
    T.print();
  }

  std::printf("\nexpected shape: one VPL iteration per chunk at probability "
              "0 (the steady state of Section 3); the count grows with the\n"
              "dependence rate and saturates near one round per dependent "
              "lane.\n");
  return 0;
}
