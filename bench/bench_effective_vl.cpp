//===- bench/bench_effective_vl.cpp - Dependence-frequency sensitivity -----===//
//
// Reproduces the qualitative claims of Sections 1-2: FlexVec's partial
// vector execution degrades gracefully as the dependence frequency rises
// (the effective vector length falls), while the PACT'13-style
// all-or-nothing speculative vectorizer "will experience constant
// rollbacks" once a dependence appears in most vector chunks.
//
// Two kernels are swept:
//  * argmin conditional update (update probability 0 .. 0.5)
//  * the Figure 2 memory-conflict loop (conflict probability 0 .. 0.5)
//
// Reported: speedup over scalar for the speculative baseline, FlexVec,
// and FlexVec-RTM, plus the measured effective vector length.
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "core/Pipeline.h"
#include "profile/LoopProfiler.h"
#include "support/Table.h"
#include "workloads/Benchmarks.h"

#include <cstdio>
#include <functional>

using namespace flexvec;
using namespace flexvec::workloads;

namespace {

void sweep(const char *Title, const ir::LoopFunction &F,
           const std::function<BenchInstance(Rng &, double)> &Gen) {
  std::printf("== %s ==\n", Title);
  core::PipelineResult PR = core::compileLoop(F);
  if (!PR.FlexVec) {
    std::printf("no FlexVec build: %s\n", PR.Plan.Reason.c_str());
    return;
  }

  TextTable T({"dep prob", "eff. VL", "speculative(PACT'13)", "flexvec",
               "flexvec-rtm"});
  const double Probs[] = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5};
  for (double P : Probs) {
    Rng R(0xEFF + static_cast<uint64_t>(P * 1000));
    BenchInstance In = Gen(R, P);

    profile::LoopProfiler Prof(F, PR.Plan);
    mem::Memory M = In.Image.clone();
    Prof.profileRun(M, In.Invocations[0]);
    double EffVl = Prof.summarize(1.0).EffectiveVL;

    sim::OooCore ScalarCore;
    core::runProgramMulti(F, PR.Scalar, In.Image, In.Invocations,
                          &ScalarCore);
    auto speedupOf = [&](const codegen::CompiledLoop &CL) {
      sim::OooCore Core;
      core::RunOutcome O =
          core::runProgramMulti(F, CL, In.Image, In.Invocations, &Core);
      if (!O.Ok)
        return std::string("FAIL");
      double S = static_cast<double>(ScalarCore.stats().Cycles) /
                 static_cast<double>(Core.stats().Cycles);
      return TextTable::fmt(S, 2) + "x";
    };

    std::string Spec = PR.Speculative ? speedupOf(*PR.Speculative) : "n/a";
    T.addRow({TextTable::fmt(P, 2), TextTable::fmt(EffVl, 1), Spec,
              speedupOf(*PR.FlexVec), speedupOf(*PR.Rtm)});
  }
  T.print();
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Effective vector length sensitivity: FlexVec vs the "
              "all-or-nothing speculative baseline (Section 2)\n\n");

  auto ArgminLoop = buildArgExtremeLoop("argmin_sweep", /*Fp=*/false,
                                        /*ExtraCompute=*/2,
                                        /*Branchy=*/false);
  sweep("conditional scalar update (argmin, VL=16)", *ArgminLoop,
        [&](Rng &R, double P) {
          return genArgExtremeInputs(*ArgminLoop, R, /*Trip=*/20000,
                                     /*Invocations=*/1, P, false, 2, false);
        });

  auto Conflict = buildScatterAccumLoop("conflict_sweep", /*Fp=*/false,
                                        /*ExtraCompute=*/2);
  sweep("runtime memory dependence (scatter-accumulate, VL=16)", *Conflict,
        [&](Rng &R, double P) {
          return genScatterAccumInputs(*Conflict, R, /*Trip=*/20000,
                                       /*Invocations=*/1, P,
                                       /*TableSize=*/4096, false, 2);
        });

  std::printf(
      "expected shape: at prob 0 all vector schemes win and are similar;\n"
      "as the probability rises the speculative baseline collapses below\n"
      "1x (constant scalar rollbacks) while FlexVec degrades gracefully\n"
      "(VPL re-execution only for the lanes past each dependence).\n");
  return 0;
}
