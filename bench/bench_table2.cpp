//===- bench/bench_table2.cpp - Table 2: coverage, trips, instruction mix --===//
//
// Regenerates Table 2 of the paper: per benchmark, the hot-loop coverage,
// the average trip count, and the FlexVec instructions used to vectorize
// it. Coverage comes from the workload definition (it is published input
// data for us — see DESIGN.md); the trip count and effective vector
// length are *measured* by the Pin-like profiler over the reference
// interpreter; the instruction mix is scanned from the generated FlexVec
// program and checked against the paper's row.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "profile/LoopProfiler.h"
#include "support/Table.h"
#include "workloads/Benchmarks.h"

#include <cstdio>
#include <cstring>

using namespace flexvec;
using namespace flexvec::workloads;

namespace {

std::string mixOf(const isa::Program &P) {
  std::string Mix;
  auto add = [&Mix](const char *Name) {
    if (!Mix.empty())
      Mix += ", ";
    Mix += Name;
  };
  if (P.usesOpcode(isa::Opcode::KFtmExc) ||
      P.usesOpcode(isa::Opcode::KFtmInc))
    add("KFTM");
  if (P.usesOpcode(isa::Opcode::VSlctLast))
    add("VPSLCTLAST");
  if (P.usesOpcode(isa::Opcode::VGatherFF))
    add("VPGATHERFF");
  if (P.usesOpcode(isa::Opcode::VMovFF))
    add("VMOVFF");
  if (P.usesOpcode(isa::Opcode::VConflictM))
    add("VPCONFLICTM");
  return Mix;
}

} // namespace

int main(int argc, char **argv) {
  double Scale = 0.3;
  for (int A = 1; A < argc; ++A)
    if (std::strncmp(argv[A], "--scale=", 8) == 0)
      Scale = std::atof(argv[A] + 8);

  std::printf("Table 2: Breakdown of Coverage, Average Trip Count and "
              "FlexVec Instructions Used\n\n");

  std::vector<Benchmark> Benchmarks = buildAllBenchmarks(Scale);
  TextTable T({"benchmark", "coverage", "avg trip (paper)",
               "avg trip (measured)", "eff. VL", "instruction mix",
               "mix == paper"});

  for (Benchmark &B : Benchmarks) {
    core::PipelineResult PR = core::compileLoop(*B.F);
    if (!PR.FlexVec) {
      std::printf("%s: no FlexVec program\n", B.Name.c_str());
      return 1;
    }

    Rng R(0x7AB1E2 + std::hash<std::string>{}(B.Name));
    BenchInstance In = B.Gen(R);
    if (In.Invocations.size() > 64)
      In.Invocations.resize(64);

    profile::LoopProfiler Prof(*B.F, PR.Plan);
    mem::Memory M = In.Image.clone();
    for (const ir::Bindings &Inv : In.Invocations)
      Prof.profileRun(M, Inv);
    analysis::LoopProfile Summary = Prof.summarize(B.Coverage);

    std::string Mix = mixOf(PR.FlexVec->Prog);
    T.addRow({B.Name, TextTable::fmtPercent(B.Coverage),
              TextTable::fmtInt(B.PaperTripCount),
              TextTable::fmtInt(static_cast<long long>(Summary.AvgTripCount)),
              TextTable::fmt(Summary.EffectiveVL, 1), Mix,
              Mix == B.PaperMix ? "yes" : "NO (" + B.PaperMix + ")"});
  }
  T.print();
  std::printf("\nNote: trip counts above ~20k are simulated at a reduced "
              "length (column 3 holds the paper's value); the selection\n"
              "thresholds (trip >= 16, effective VL >= 6) hold for every "
              "row, as required by the paper's cost model.\n");
  return 0;
}
