//===- bench/bench_figure8.cpp - Figure 8: application speedups ------------===//
//
// Regenerates Figure 8 of the paper: overall application speedup of
// FlexVec-vectorized code over the AVX-512 baseline on the Table 1 core,
// for 11 SPEC 2006 C/C++ benchmarks and 7 real applications. For each
// benchmark the hot loop is simulated for both programs; the hot-region
// speedup is scaled by the benchmark's published coverage (the paper's
// rdtsc methodology), and geomeans are reported per group.
//
// Expected shape (paper): every benchmark ≥ 1.0x, overall speedups in the
// ~1.03-1.16x band, SPEC geomean ≈ 1.09x, apps geomean ≈ 1.11x.
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "core/Pipeline.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Benchmarks.h"

#include <cstdio>
#include <cstring>

using namespace flexvec;
using namespace flexvec::workloads;

int main(int argc, char **argv) {
  double Scale = 1.0;
  for (int A = 1; A < argc; ++A)
    if (std::strncmp(argv[A], "--scale=", 8) == 0)
      Scale = std::atof(argv[A] + 8);

  std::printf("Figure 8: Application Speedup over an Aggressive OOO "
              "Processor (AVX-512 baseline)\n\n");

  std::vector<Benchmark> Benchmarks = buildAllBenchmarks(Scale);
  TextTable T({"benchmark", "group", "coverage", "hot speedup",
               "overall speedup", "paper", "correct"});

  std::vector<double> SpecOverall, AppsOverall;
  std::vector<double> SpecPaper, AppsPaper;

  for (Benchmark &B : Benchmarks) {
    core::PipelineResult PR = core::compileLoop(*B.F);
    if (!PR.Plan.Vectorizable || !PR.Plan.needsFlexVec()) {
      std::printf("%s: unexpected plan: %s\n", B.Name.c_str(),
                  PR.Plan.describe(*B.F).c_str());
      return 1;
    }

    Rng R(0xF1E8 + std::hash<std::string>{}(B.Name));
    BenchInstance In = B.Gen(R);

    // Correctness cross-check against the reference interpreter.
    core::RunOutcome Ref = core::runReferenceMulti(*B.F, In.Image,
                                                   In.Invocations);
    core::RunOutcome Flex = core::runProgramMulti(*B.F, *PR.FlexVec,
                                                  In.Image, In.Invocations);
    bool Correct = core::outcomesMatch(*B.F, Ref, Flex);

    // Timing: baseline (scalar — the traditional vectorizer rejects these
    // loops) vs FlexVec, each on a fresh Table 1 core.
    sim::OooCore BaseCore;
    core::runProgramMulti(*B.F, PR.baseline(), In.Image, In.Invocations,
                          &BaseCore);
    sim::OooCore FlexCore;
    core::runProgramMulti(*B.F, *PR.FlexVec, In.Image, In.Invocations,
                          &FlexCore);

    double Hot = static_cast<double>(BaseCore.stats().Cycles) /
                 static_cast<double>(FlexCore.stats().Cycles);
    double Overall = core::coverageScaledSpeedup(Hot, B.Coverage);

    T.addRow({B.Name, B.Group, TextTable::fmtPercent(B.Coverage),
              TextTable::fmt(Hot, 2) + "x", TextTable::fmt(Overall, 3) + "x",
              TextTable::fmt(B.PaperSpeedup, 2) + "x",
              Correct ? "yes" : "NO"});

    if (B.Group == "SPEC") {
      SpecOverall.push_back(Overall);
      SpecPaper.push_back(B.PaperSpeedup);
    } else {
      AppsOverall.push_back(Overall);
      AppsPaper.push_back(B.PaperSpeedup);
    }
  }

  T.addSeparator();
  T.addRow({"GEOMEAN (SPEC)", "", "", "",
            TextTable::fmt(geomean(SpecOverall), 3) + "x",
            TextTable::fmt(geomean(SpecPaper), 2) + "x", ""});
  T.addRow({"GEOMEAN (apps)", "", "", "",
            TextTable::fmt(geomean(AppsOverall), 3) + "x",
            TextTable::fmt(geomean(AppsPaper), 2) + "x", ""});
  T.print();

  std::printf("\npaper reference: SPEC geomean 1.09x, apps geomean 1.11x; "
              "range 1.03x (403.gcc) .. 1.16x (473.astar, 444.namd)\n");
  return 0;
}
