//===- bench/bench_figure8.cpp - Figure 8: application speedups ------------===//
//
// Regenerates Figure 8 of the paper: overall application speedup of
// FlexVec-vectorized code over the AVX-512 baseline on the Table 1 core,
// for 11 SPEC 2006 C/C++ benchmarks and 7 real applications. Runs on the
// parallel evaluation engine (core::runSweep via workloads::runFigure8Sweep),
// so --jobs=N fans the matrix out over N workers; the numbers are
// identical for every N.
//
// Expected shape (paper): every benchmark >= 1.0x, overall speedups in the
// ~1.03-1.16x band, SPEC geomean ~ 1.09x, apps geomean ~ 1.11x.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Table.h"
#include "workloads/Figure8.h"

#include <cstdio>
#include <string>

using namespace flexvec;
using namespace flexvec::core;

int main(int argc, char **argv) {
  SweepOptions Opts;
  for (int A = 1; A < argc; ++A) {
    std::string Arg = argv[A];
    double D = 0;
    uint64_t U = 0;
    if (Arg.rfind("--scale=", 0) == 0 && parseDouble(Arg.substr(8), D) &&
        D > 0) {
      Opts.Scale = D;
    } else if (Arg.rfind("--jobs=", 0) == 0 && parseUInt(Arg.substr(7), U)) {
      Opts.Jobs = static_cast<unsigned>(U);
    } else if (Arg.rfind("--seed=", 0) == 0 && parseUInt(Arg.substr(7), U)) {
      Opts.Seed = U;
    } else {
      std::fprintf(stderr, "usage: bench_figure8 [--scale=X] [--jobs=N] "
                           "[--seed=N]\n");
      return 2;
    }
  }

  std::printf("Figure 8: Application Speedup over an Aggressive OOO "
              "Processor (AVX-512 baseline)\n\n");

  SweepResult R = workloads::runFigure8Sweep(Opts);

  TextTable T({"benchmark", "group", "coverage", "hot speedup",
               "overall speedup", "paper", "correct"});
  for (const CellResult &Cell : R.Cells) {
    if (Cell.Variant != "flexvec" || !Cell.Generated)
      continue;
    T.addRow({Cell.Benchmark, Cell.Group,
              TextTable::fmtPercent(Cell.Coverage),
              TextTable::fmt(Cell.HotSpeedup, 2) + "x",
              TextTable::fmt(Cell.Overall, 3) + "x",
              TextTable::fmt(Cell.PaperSpeedup, 2) + "x",
              Cell.Correct ? "yes" : "NO"});
  }
  T.addSeparator();
  T.addRow({"GEOMEAN (SPEC)", "", "", "",
            TextTable::fmt(R.SpecGeomean, 3) + "x", "1.09x", ""});
  T.addRow({"GEOMEAN (apps)", "", "", "",
            TextTable::fmt(R.AppsGeomean, 3) + "x", "1.11x", ""});
  T.print();

  std::printf("\npaper reference: SPEC geomean 1.09x, apps geomean 1.11x; "
              "range 1.03x (403.gcc) .. 1.16x (473.astar, 444.namd)\n");

  for (const CellResult &Cell : R.Cells)
    if (Cell.Generated && !Cell.Correct) {
      std::fprintf(stderr, "error: %s/%s diverged from the reference\n",
                   Cell.Benchmark.c_str(), Cell.Variant.c_str());
      return 1;
    }
  return 0;
}
