#!/usr/bin/env bash
# Runs the deterministic Figure 8 sweep and diffs it against the
# checked-in baseline (bench/BENCH_figure8.baseline.json) with
# flexvec-benchdiff. The CI bench-gate job runs this on every PR; it
# fails on correctness regressions, per-cell cycle growth beyond the
# default 2% tolerance, or a >2% geomean-speedup drop.
#
#   usage: bench/check_baseline.sh [build-dir]    (default: build)
#
# After an intentional performance or modelling change, regenerate the
# baseline locally and commit it together with the change:
#
#   FLEXVEC_UPDATE_BASELINE=1 bench/check_baseline.sh build
#
# The baseline configuration is canonical: --deterministic --seed=1
# --scale=0.1. The payload is byte-identical for any --jobs value, so
# --jobs=0 (all hardware threads) is safe everywhere.
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BASELINE="$REPO_ROOT/bench/BENCH_figure8.baseline.json"
CURRENT="$BUILD_DIR/BENCH_figure8.current.json"

BENCH="$BUILD_DIR/tools/flexvec-bench"
BENCHDIFF="$BUILD_DIR/tools/flexvec-benchdiff"
for Tool in "$BENCH" "$BENCHDIFF"; do
  if [ ! -x "$Tool" ]; then
    echo "error: $Tool not found; build the 'flexvec-bench' and" \
         "'flexvec-benchdiff' targets first" >&2
    exit 2
  fi
done

"$BENCH" --deterministic --seed=1 --scale=0.1 --jobs=0 --quiet \
  --out="$CURRENT"

if [ "${FLEXVEC_UPDATE_BASELINE:-0}" = "1" ]; then
  cp "$CURRENT" "$BASELINE"
  echo "updated $BASELINE"
  exit 0
fi

exec "$BENCHDIFF" "$BASELINE" "$CURRENT"
