//===- bench/bench_micro.cpp - Engineering micro-benchmarks ----------------===//
//
// google-benchmark measurements of the repository's own machinery: the
// functional emulator, the coupled emulator+timing pipeline, the
// compilation pipeline, and the PDG/analysis front end. These guard the
// experiment harness's wall-clock budget rather than reproducing a paper
// figure.
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "core/Pipeline.h"
#include "workloads/PaperLoops.h"

#include <benchmark/benchmark.h>

using namespace flexvec;
using namespace flexvec::workloads;

namespace {

struct Fixture {
  std::unique_ptr<ir::LoopFunction> F = buildH264Loop();
  core::PipelineResult PR = core::compileLoop(*F);
  LoopInputs In;
  Fixture() {
    Rng R(31);
    In = genH264Inputs(*F, R, 20000, 0.02);
  }
};

Fixture &fixture() {
  static Fixture Fx;
  return Fx;
}

void BM_EmulatorScalar(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::RunOutcome Out =
        core::runProgram(Fx.PR.Scalar, Fx.In.Image, Fx.In.B);
    Instrs += Out.Exec.Stats.Instructions;
    benchmark::DoNotOptimize(Out.MemFingerprint);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_EmulatorFlexVec(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::RunOutcome Out =
        core::runProgram(*Fx.PR.FlexVec, Fx.In.Image, Fx.In.B);
    Instrs += Out.Exec.Stats.Instructions;
    benchmark::DoNotOptimize(Out.MemFingerprint);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_EmulatorPlusTimingModel(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::Measurement M =
        core::measureProgram(*Fx.PR.FlexVec, Fx.In.Image, Fx.In.B);
    Instrs += M.Timing.Instructions;
    benchmark::DoNotOptimize(M.Timing.Cycles);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_ReferenceInterpreter(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Iters = 0;
  for (auto _ : State) {
    core::RunOutcome Out = core::runReference(*Fx.F, Fx.In.Image, Fx.In.B);
    benchmark::DoNotOptimize(Out.MemFingerprint);
    Iters += 20000;
  }
  State.counters["loop-iters/s"] = benchmark::Counter(
      static_cast<double>(Iters), benchmark::Counter::kIsRate);
}

void BM_CompilePipeline(benchmark::State &State) {
  for (auto _ : State) {
    auto F = buildH264Loop();
    core::PipelineResult PR = core::compileLoop(*F);
    benchmark::DoNotOptimize(PR.FlexVec->Prog.size());
  }
}

void BM_PdgAndAnalysis(benchmark::State &State) {
  auto F = buildH264Loop();
  for (auto _ : State) {
    pdg::Pdg P(*F);
    analysis::VectorizationPlan Plan = analysis::analyzeLoop(P);
    benchmark::DoNotOptimize(Plan.Vectorizable);
  }
}

void BM_MemoryClone(benchmark::State &State) {
  Fixture &Fx = fixture();
  for (auto _ : State) {
    mem::Memory M = Fx.In.Image.clone();
    benchmark::DoNotOptimize(M.numPages());
  }
}

BENCHMARK(BM_EmulatorScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmulatorFlexVec)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmulatorPlusTimingModel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReferenceInterpreter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompilePipeline)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PdgAndAnalysis)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryClone)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
