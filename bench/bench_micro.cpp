//===- bench/bench_micro.cpp - Engineering micro-benchmarks ----------------===//
//
// google-benchmark measurements of the repository's own machinery: the
// functional emulator, the coupled emulator+timing pipeline, the
// compilation pipeline, and the PDG/analysis front end. These guard the
// experiment harness's wall-clock budget rather than reproducing a paper
// figure.
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "core/Pipeline.h"
#include "workloads/PaperLoops.h"

#include <benchmark/benchmark.h>

using namespace flexvec;
using namespace flexvec::workloads;

namespace {

struct Fixture {
  std::unique_ptr<ir::LoopFunction> F = buildH264Loop();
  core::PipelineResult PR = core::compileLoop(*F);
  LoopInputs In;
  Fixture() {
    Rng R(31);
    In = genH264Inputs(*F, R, 20000, 0.02);
  }
};

Fixture &fixture() {
  static Fixture Fx;
  return Fx;
}

void BM_EmulatorScalar(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::RunOutcome Out =
        core::runProgram(Fx.PR.Scalar, Fx.In.Image, Fx.In.B);
    Instrs += Out.Exec.Stats.Instructions;
    benchmark::DoNotOptimize(Out.MemFingerprint);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_EmulatorFlexVec(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::RunOutcome Out =
        core::runProgram(*Fx.PR.FlexVec, Fx.In.Image, Fx.In.B);
    Instrs += Out.Exec.Stats.Instructions;
    benchmark::DoNotOptimize(Out.MemFingerprint);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_EmulatorPlusTimingModel(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::Measurement M =
        core::measureProgram(*Fx.PR.FlexVec, Fx.In.Image, Fx.In.B);
    Instrs += M.Timing.Instructions;
    benchmark::DoNotOptimize(M.Timing.Cycles);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_ReferenceInterpreter(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Iters = 0;
  for (auto _ : State) {
    core::RunOutcome Out = core::runReference(*Fx.F, Fx.In.Image, Fx.In.B);
    benchmark::DoNotOptimize(Out.MemFingerprint);
    Iters += 20000;
  }
  State.counters["loop-iters/s"] = benchmark::Counter(
      static_cast<double>(Iters), benchmark::Counter::kIsRate);
}

void BM_CompilePipeline(benchmark::State &State) {
  for (auto _ : State) {
    auto F = buildH264Loop();
    core::PipelineResult PR = core::compileLoop(*F);
    benchmark::DoNotOptimize(PR.FlexVec->Prog.size());
  }
}

void BM_PdgAndAnalysis(benchmark::State &State) {
  auto F = buildH264Loop();
  for (auto _ : State) {
    pdg::Pdg P(*F);
    analysis::VectorizationPlan Plan = analysis::analyzeLoop(P);
    benchmark::DoNotOptimize(Plan.Vectorizable);
  }
}

void BM_MemoryClone(benchmark::State &State) {
  Fixture &Fx = fixture();
  for (auto _ : State) {
    mem::Memory M = Fx.In.Image.clone();
    benchmark::DoNotOptimize(M.numPages());
  }
}

//===----------------------------------------------------------------------===//
// Hot-path attribution benchmarks (docs/PERFORMANCE.md): each of the
// pipeline optimizations measured in isolation, so a regression in one
// layer is visible without re-profiling the whole sweep.
//===----------------------------------------------------------------------===//

// Layer 1a, software TLB. Same-page accesses are the loop-workload common
// case and must be served by the TLB, not the page-map tree walk; the
// miss benchmark ping-pongs between two pages that collide in the
// direct-mapped TLB (64 entries, so pages 0 and 64 share a slot), making
// every lookup take the slow path. The hit/miss gap is the TLB's win.
void BM_MemoryTlbHitLoad(benchmark::State &State) {
  mem::Memory M;
  M.map(0x10000, mem::PageSize);
  uint64_t Accesses = 0;
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (uint64_t Off = 0; Off + 8 <= mem::PageSize; Off += 8) {
      uint64_t V = 0;
      M.readValue(0x10000 + Off, V);
      Sum += V;
    }
    Accesses += mem::PageSize / 8;
    benchmark::DoNotOptimize(Sum);
  }
  State.counters["loads/s"] = benchmark::Counter(
      static_cast<double>(Accesses), benchmark::Counter::kIsRate);
  State.counters["tlb-hit-rate"] =
      static_cast<double>(M.stats().TlbHits) /
      static_cast<double>(M.stats().TlbHits + M.stats().TlbMisses);
}

void BM_MemoryTlbMissLoad(benchmark::State &State) {
  mem::Memory M;
  M.map(0x10000, mem::PageSize);
  M.map(0x10000 + 64 * mem::PageSize, mem::PageSize); // same TLB slot
  uint64_t Accesses = 0;
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (unsigned I = 0; I < 256; ++I) {
      uint64_t V = 0;
      M.readValue(0x10000 + (I & 1) * 64 * mem::PageSize, V);
      Sum += V;
    }
    Accesses += 256;
    benchmark::DoNotOptimize(Sum);
  }
  State.counters["loads/s"] = benchmark::Counter(
      static_cast<double>(Accesses), benchmark::Counter::kIsRate);
  State.counters["tlb-hit-rate"] =
      static_cast<double>(M.stats().TlbHits) /
      static_cast<double>(M.stats().TlbHits + M.stats().TlbMisses);
}

// Layer 1b, copy-on-write clones. clone() against the eager deepClone()
// it replaced on the per-cell path; the COW side also pays the first
// write per touched page, so both halves of the trade are visible.
void BM_MemoryDeepClone(benchmark::State &State) {
  Fixture &Fx = fixture();
  for (auto _ : State) {
    mem::Memory M = Fx.In.Image.deepClone();
    benchmark::DoNotOptimize(M.numPages());
  }
}

void BM_MemoryCloneThenTouchAll(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Copies = 0;
  for (auto _ : State) {
    mem::Memory M = Fx.In.Image.clone();
    // Touch one word per mapped data page (worst case for COW). The image
    // is laid out from 0x10000 upward with one unmapped guard page per
    // allocation, so scanning twice the mapped span covers every page;
    // reads of guard pages fault and are skipped.
    uint64_t End = 0x10000 + 2 * Fx.In.Image.numPages() * mem::PageSize;
    for (uint64_t A = 0x10000; A < End; A += mem::PageSize) {
      uint64_t V = 0;
      if (M.readValue(A, V).Ok)
        M.writeValue(A, V + 1);
    }
    Copies += M.stats().CowCopies;
    benchmark::DoNotOptimize(M.numPages());
  }
  State.counters["cow-copies"] =
      static_cast<double>(Copies) / static_cast<double>(State.iterations());
}

// Layer 2, pre-decoded dispatch. Plan construction runs once per
// Machine::run; BM_EmulatorScalar/FlexVec above measure the resulting
// steady-state dispatch throughput. This pins the predecode + setup cost
// alone by stopping the run after a single retired instruction.
void BM_PredecodeAndSetup(benchmark::State &State) {
  Fixture &Fx = fixture();
  for (auto _ : State) {
    core::RunOutcome Out =
        core::runProgram(Fx.PR.Scalar, Fx.In.Image, Fx.In.B, nullptr,
                         /*MaxInstructions=*/1);
    benchmark::DoNotOptimize(Out.Exec.Stats.Instructions);
  }
}

// Layer 3, trace delivery. The same run fed to a sink that only
// implements onInstr (every record goes through the compatibility shim —
// one virtual call per retired instruction, the legacy cost model) versus
// a batch-native sink (one virtual call per 64-entry batch).
struct PerInstrCountingSink final : emu::TraceSink {
  uint64_t Records = 0;
  void onInstr(const emu::DynInstr &DI) override {
    Records += 1 + DI.NumMemAddrs;
  }
};

struct BatchCountingSink final : emu::TraceSink {
  uint64_t Records = 0;
  void onInstr(const emu::DynInstr &DI) override {
    Records += 1 + DI.NumMemAddrs;
  }
  void onBatch(const emu::DynInstr *Batch, size_t N) override {
    for (size_t I = 0; I < N; ++I)
      Records += 1 + Batch[I].NumMemAddrs;
  }
};

template <typename SinkT>
void runTraceDelivery(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    SinkT Sink;
    core::RunOutcome Out =
        core::runProgram(*Fx.PR.FlexVec, Fx.In.Image, Fx.In.B, &Sink);
    Instrs += Out.Exec.Stats.Instructions;
    benchmark::DoNotOptimize(Sink.Records);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_TraceDeliveryPerInstr(benchmark::State &State) {
  runTraceDelivery<PerInstrCountingSink>(State);
}

void BM_TraceDeliveryBatched(benchmark::State &State) {
  runTraceDelivery<BatchCountingSink>(State);
}

void BM_TraceDeliveryNoSink(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::RunOutcome Out =
        core::runProgram(*Fx.PR.FlexVec, Fx.In.Image, Fx.In.B);
    Instrs += Out.Exec.Stats.Instructions;
    benchmark::DoNotOptimize(Out.MemFingerprint);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_EmulatorScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmulatorFlexVec)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmulatorPlusTimingModel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReferenceInterpreter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompilePipeline)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PdgAndAnalysis)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryClone)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryTlbHitLoad)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryTlbMissLoad)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryDeepClone)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryCloneThenTouchAll)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PredecodeAndSetup)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TraceDeliveryNoSink)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceDeliveryPerInstr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceDeliveryBatched)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
