//===- bench/bench_micro.cpp - Engineering micro-benchmarks ----------------===//
//
// google-benchmark measurements of the repository's own machinery: the
// functional emulator, the coupled emulator+timing pipeline, the
// compilation pipeline, and the PDG/analysis front end. These guard the
// experiment harness's wall-clock budget rather than reproducing a paper
// figure.
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "core/Pipeline.h"
#include "emu/simd/Kernels.h"
#include "isa/Program.h"
#include "workloads/PaperLoops.h"

#include <benchmark/benchmark.h>

#include <cstring>

using namespace flexvec;
using namespace flexvec::workloads;

namespace {

struct Fixture {
  std::unique_ptr<ir::LoopFunction> F = buildH264Loop();
  core::PipelineResult PR = core::compileLoop(*F);
  LoopInputs In;
  Fixture() {
    Rng R(31);
    In = genH264Inputs(*F, R, 20000, 0.02);
  }
};

Fixture &fixture() {
  static Fixture Fx;
  return Fx;
}

void BM_EmulatorScalar(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::RunOutcome Out =
        core::runProgram(Fx.PR.Scalar, Fx.In.Image, Fx.In.B);
    Instrs += Out.Exec.Stats.Instructions;
    benchmark::DoNotOptimize(Out.MemFingerprint);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_EmulatorFlexVec(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::RunOutcome Out =
        core::runProgram(*Fx.PR.FlexVec, Fx.In.Image, Fx.In.B);
    Instrs += Out.Exec.Stats.Instructions;
    benchmark::DoNotOptimize(Out.MemFingerprint);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_EmulatorPlusTimingModel(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::Measurement M =
        core::measureProgram(*Fx.PR.FlexVec, Fx.In.Image, Fx.In.B);
    Instrs += M.Timing.Instructions;
    benchmark::DoNotOptimize(M.Timing.Cycles);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_ReferenceInterpreter(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Iters = 0;
  for (auto _ : State) {
    core::RunOutcome Out = core::runReference(*Fx.F, Fx.In.Image, Fx.In.B);
    benchmark::DoNotOptimize(Out.MemFingerprint);
    Iters += 20000;
  }
  State.counters["loop-iters/s"] = benchmark::Counter(
      static_cast<double>(Iters), benchmark::Counter::kIsRate);
}

void BM_CompilePipeline(benchmark::State &State) {
  for (auto _ : State) {
    auto F = buildH264Loop();
    core::PipelineResult PR = core::compileLoop(*F);
    benchmark::DoNotOptimize(PR.FlexVec->Prog.size());
  }
}

void BM_PdgAndAnalysis(benchmark::State &State) {
  auto F = buildH264Loop();
  for (auto _ : State) {
    pdg::Pdg P(*F);
    analysis::VectorizationPlan Plan = analysis::analyzeLoop(P);
    benchmark::DoNotOptimize(Plan.Vectorizable);
  }
}

void BM_MemoryClone(benchmark::State &State) {
  Fixture &Fx = fixture();
  for (auto _ : State) {
    mem::Memory M = Fx.In.Image.clone();
    benchmark::DoNotOptimize(M.numPages());
  }
}

//===----------------------------------------------------------------------===//
// Hot-path attribution benchmarks (docs/PERFORMANCE.md): each of the
// pipeline optimizations measured in isolation, so a regression in one
// layer is visible without re-profiling the whole sweep.
//===----------------------------------------------------------------------===//

// Layer 1a, software TLB. Same-page accesses are the loop-workload common
// case and must be served by the TLB, not the page-map tree walk; the
// miss benchmark ping-pongs between two pages that collide in the
// direct-mapped TLB (64 entries, so pages 0 and 64 share a slot), making
// every lookup take the slow path. The hit/miss gap is the TLB's win.
void BM_MemoryTlbHitLoad(benchmark::State &State) {
  mem::Memory M;
  M.map(0x10000, mem::PageSize);
  uint64_t Accesses = 0;
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (uint64_t Off = 0; Off + 8 <= mem::PageSize; Off += 8) {
      uint64_t V = 0;
      M.readValue(0x10000 + Off, V);
      Sum += V;
    }
    Accesses += mem::PageSize / 8;
    benchmark::DoNotOptimize(Sum);
  }
  State.counters["loads/s"] = benchmark::Counter(
      static_cast<double>(Accesses), benchmark::Counter::kIsRate);
  State.counters["tlb-hit-rate"] =
      static_cast<double>(M.stats().TlbHits) /
      static_cast<double>(M.stats().TlbHits + M.stats().TlbMisses);
}

void BM_MemoryTlbMissLoad(benchmark::State &State) {
  mem::Memory M;
  M.map(0x10000, mem::PageSize);
  M.map(0x10000 + 64 * mem::PageSize, mem::PageSize); // same TLB slot
  uint64_t Accesses = 0;
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (unsigned I = 0; I < 256; ++I) {
      uint64_t V = 0;
      M.readValue(0x10000 + (I & 1) * 64 * mem::PageSize, V);
      Sum += V;
    }
    Accesses += 256;
    benchmark::DoNotOptimize(Sum);
  }
  State.counters["loads/s"] = benchmark::Counter(
      static_cast<double>(Accesses), benchmark::Counter::kIsRate);
  State.counters["tlb-hit-rate"] =
      static_cast<double>(M.stats().TlbHits) /
      static_cast<double>(M.stats().TlbHits + M.stats().TlbMisses);
}

// Layer 1b, copy-on-write clones. clone() against the eager deepClone()
// it replaced on the per-cell path; the COW side also pays the first
// write per touched page, so both halves of the trade are visible.
void BM_MemoryDeepClone(benchmark::State &State) {
  Fixture &Fx = fixture();
  for (auto _ : State) {
    mem::Memory M = Fx.In.Image.deepClone();
    benchmark::DoNotOptimize(M.numPages());
  }
}

void BM_MemoryCloneThenTouchAll(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Copies = 0;
  for (auto _ : State) {
    mem::Memory M = Fx.In.Image.clone();
    // Touch one word per mapped data page (worst case for COW). The image
    // is laid out from 0x10000 upward with one unmapped guard page per
    // allocation, so scanning twice the mapped span covers every page;
    // reads of guard pages fault and are skipped.
    uint64_t End = 0x10000 + 2 * Fx.In.Image.numPages() * mem::PageSize;
    for (uint64_t A = 0x10000; A < End; A += mem::PageSize) {
      uint64_t V = 0;
      if (M.readValue(A, V).Ok)
        M.writeValue(A, V + 1);
    }
    Copies += M.stats().CowCopies;
    benchmark::DoNotOptimize(M.numPages());
  }
  State.counters["cow-copies"] =
      static_cast<double>(Copies) / static_cast<double>(State.iterations());
}

// Layer 2, pre-decoded dispatch. Plan construction runs once per
// Machine::run; BM_EmulatorScalar/FlexVec above measure the resulting
// steady-state dispatch throughput. This pins the predecode + setup cost
// alone by stopping the run after a single retired instruction.
void BM_PredecodeAndSetup(benchmark::State &State) {
  Fixture &Fx = fixture();
  for (auto _ : State) {
    core::RunOutcome Out =
        core::runProgram(Fx.PR.Scalar, Fx.In.Image, Fx.In.B, nullptr,
                         /*MaxInstructions=*/1);
    benchmark::DoNotOptimize(Out.Exec.Stats.Instructions);
  }
}

// Layer 3, trace delivery. The same run fed to a sink that only
// implements onInstr (every record goes through the compatibility shim —
// one virtual call per retired instruction, the legacy cost model) versus
// a batch-native sink (one virtual call per 64-entry batch).
struct PerInstrCountingSink final : emu::TraceSink {
  uint64_t Records = 0;
  void onInstr(const emu::DynInstr &DI) override {
    Records += 1 + DI.NumMemAddrs;
  }
};

struct BatchCountingSink final : emu::TraceSink {
  uint64_t Records = 0;
  void onInstr(const emu::DynInstr &DI) override {
    Records += 1 + DI.NumMemAddrs;
  }
  void onBatch(const emu::DynInstr *Batch, size_t N) override {
    for (size_t I = 0; I < N; ++I)
      Records += 1 + Batch[I].NumMemAddrs;
  }
};

template <typename SinkT>
void runTraceDelivery(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    SinkT Sink;
    core::RunOutcome Out =
        core::runProgram(*Fx.PR.FlexVec, Fx.In.Image, Fx.In.B, &Sink);
    Instrs += Out.Exec.Stats.Instructions;
    benchmark::DoNotOptimize(Sink.Records);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

void BM_TraceDeliveryPerInstr(benchmark::State &State) {
  runTraceDelivery<PerInstrCountingSink>(State);
}

void BM_TraceDeliveryBatched(benchmark::State &State) {
  runTraceDelivery<BatchCountingSink>(State);
}

void BM_TraceDeliveryNoSink(benchmark::State &State) {
  Fixture &Fx = fixture();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    core::RunOutcome Out =
        core::runProgram(*Fx.PR.FlexVec, Fx.In.Image, Fx.In.B);
    Instrs += Out.Exec.Stats.Instructions;
    benchmark::DoNotOptimize(Out.MemFingerprint);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}

//===----------------------------------------------------------------------===//
// Layer 4, SIMD lane kernels (emu/simd). Two levels of attribution:
//
//  - BM_LaneKernel/*: one kernel call in isolation — the per-opcode
//    throughput of each backend's table entry, full-mask vs half-mask.
//    This is where a backend regression shows up without any dispatch
//    noise on top.
//  - BM_VectorCode/*: a sinkless emulator run over synthetic vector-only
//    programs with RunLimits::Simd pinned per backend — the instr/s the
//    kernels buy once dispatch, retire and (for the memory variants) the
//    TLB fast paths are back in the loop. ALU (register-only), masked
//    ALU, unit-stride load/store and gather/scatter variants separate
//    the kernel win from the memory-path win.
//
// Backends that the host cannot execute (or the compiler could not
// build) are not registered, so the suite is runnable anywhere.
//===----------------------------------------------------------------------===//

struct KernelBackend {
  const char *Name;
  emu::SimdBackend Backend;
  const emu::simd::KernelTable *Table;
};

std::vector<KernelBackend> kernelBackends() {
  std::vector<KernelBackend> Rows{
      {"scalar", emu::SimdBackend::Scalar, &emu::simd::scalarKernels()}};
  if (emu::simd::hostHasAvx2() && emu::simd::avx2Compiled())
    Rows.push_back(
        {"avx2", emu::SimdBackend::Avx2, &emu::simd::avx2Kernels()});
  if (emu::simd::hostHasAvx512() && emu::simd::avx512Compiled())
    Rows.push_back(
        {"avx512", emu::SimdBackend::Avx512, &emu::simd::avx512Kernels()});
  return Rows;
}

/// Deterministic operand bytes; nonzero everywhere so VFDiv stays finite.
struct KernelOperands {
  alignas(64) uint8_t A[64];
  alignas(64) uint8_t B[64];
  alignas(64) uint8_t D[64];
  KernelOperands() {
    for (unsigned I = 0; I < 64; ++I) {
      A[I] = static_cast<uint8_t>(I * 7 + 3);
      B[I] = static_cast<uint8_t>(I * 13 + 5);
      D[I] = 0;
    }
    // Overwrite with well-formed lane payloads for the FP benchmarks;
    // integer kernels are total, so any bytes are valid for them.
    for (unsigned L = 0; L < 16; ++L) {
      float Fa = 1.5f + static_cast<float>(L);
      float Fb = 0.75f + static_cast<float>(L) * 0.5f;
      std::memcpy(A + L * 4, &Fa, 4);
      std::memcpy(B + L * 4, &Fb, 4);
    }
  }
};

void runBinKernel(benchmark::State &State, emu::simd::VecBinFn Fn,
                  uint64_t Mask) {
  KernelOperands Ops;
  for (auto _ : State) {
    Fn(Ops.D, Ops.A, Ops.B, Mask);
    benchmark::DoNotOptimize(Ops.D[0]);
    benchmark::ClobberMemory();
  }
  State.counters["kernels/s"] = benchmark::Counter(
      static_cast<double>(State.iterations()), benchmark::Counter::kIsRate);
}

void runCmpKernel(benchmark::State &State, emu::simd::VecCmpFn Fn,
                  uint64_t Mask) {
  KernelOperands Ops;
  uint64_t Acc = 0;
  for (auto _ : State) {
    Acc ^= Fn(Ops.A, Ops.B, Mask);
    benchmark::DoNotOptimize(Acc);
  }
  State.counters["kernels/s"] = benchmark::Counter(
      static_cast<double>(State.iterations()), benchmark::Counter::kIsRate);
}

void runConflictKernel(benchmark::State &State, emu::simd::VecConflictFn Fn,
                       uint64_t Enable) {
  KernelOperands Ops;
  uint64_t Acc = 0;
  for (auto _ : State) {
    Acc ^= Fn(Ops.A, Ops.B, Enable);
    benchmark::DoNotOptimize(Acc);
  }
  State.counters["kernels/s"] = benchmark::Counter(
      static_cast<double>(State.iterations()), benchmark::Counter::kIsRate);
}

void runGatherAddrKernel(benchmark::State &State, emu::simd::GatherAddrFn Fn) {
  KernelOperands Ops;
  uint64_t Addrs[16];
  for (auto _ : State) {
    Fn(Addrs, Ops.A, /*Base=*/0x10000, /*Disp=*/8, /*Scale=*/4);
    benchmark::DoNotOptimize(Addrs[0]);
    benchmark::ClobberMemory();
  }
  State.counters["kernels/s"] = benchmark::Counter(
      static_cast<double>(State.iterations()), benchmark::Counter::kIsRate);
}

/// Straight-line vector ALU block repeated by a scalar loop; sinkless, so
/// the measurement is dispatch + lane kernels and nothing else. When
/// \p Masked, every op runs under an alternating-lanes write mask.
isa::Program buildVectorAluProgram(bool Masked) {
  using namespace isa;
  ProgramBuilder B;
  const Reg Mask = Masked ? Reg::mask(1) : Reg::none();
  if (Masked)
    B.kset(Reg::mask(1), 0x5555);
  B.movImm(Reg::scalar(1), 1);
  B.movImm(Reg::scalar(2), 7);
  B.vindex(Reg::vector(1), ElemType::I32, Reg::scalar(1));
  B.vbroadcast(Reg::vector(2), ElemType::I32, Reg::scalar(2));
  B.fmovImm(Reg::scalar(3), ElemType::F32, 1.25);
  B.vbroadcast(Reg::vector(3), ElemType::F32, Reg::scalar(3));
  B.vbroadcastImm(Reg::vector(4), ElemType::F32, 3);
  B.movImm(Reg::scalar(4), 0); // loop counter
  auto Head = B.createLabel();
  auto Exit = B.createLabel();
  B.bind(Head);
  B.cmpImm(Reg::scalar(5), CmpKind::LT, Reg::scalar(4), 4096);
  B.brZero(Reg::scalar(5), Exit);
  // 16 vector ALU ops per trip: the int and fp families the kernel layer
  // serves, on both element widths.
  for (int Rep = 0; Rep < 2; ++Rep) {
    B.vbinOp(Opcode::VAdd, ElemType::I32, Reg::vector(5), Reg::vector(1),
             Reg::vector(2), Mask);
    B.vbinOp(Opcode::VMul, ElemType::I32, Reg::vector(6), Reg::vector(5),
             Reg::vector(2), Mask);
    B.vbinOp(Opcode::VXor, ElemType::I32, Reg::vector(5), Reg::vector(6),
             Reg::vector(1), Mask);
    B.vbinOp(Opcode::VMax, ElemType::I32, Reg::vector(6), Reg::vector(5),
             Reg::vector(2), Mask);
    B.vbinOpImm(Opcode::VAddImm, ElemType::I32, Reg::vector(5), Reg::vector(6),
                11, Mask);
    B.vbinOp(Opcode::VFAdd, ElemType::F32, Reg::vector(7), Reg::vector(3),
             Reg::vector(4), Mask);
    B.vbinOp(Opcode::VFMul, ElemType::F32, Reg::vector(8), Reg::vector(7),
             Reg::vector(3), Mask);
    B.vbinOp(Opcode::VFMax, ElemType::F32, Reg::vector(7), Reg::vector(8),
             Reg::vector(4), Mask);
  }
  B.binOpImm(Opcode::AddImm, Reg::scalar(4), Reg::scalar(4), 1);
  B.jmp(Head);
  B.bind(Exit);
  B.halt();
  return B.finalize();
}

/// Unit-stride VLoad/VStore sweep over a mapped buffer: full write mask,
/// no transaction, resident pages — every access takes the block-copy
/// fast path. The gathered variant drives the same traffic through
/// VGather/VScatter with an index vector (batched address translation).
isa::Program buildVectorMemProgram(bool Gathered) {
  using namespace isa;
  ProgramBuilder B;
  const uint64_t Base = 0x10000;
  B.movImm(Reg::scalar(1), static_cast<int64_t>(Base));
  B.movImm(Reg::scalar(2), static_cast<int64_t>(Base) + 8192);
  B.movImm(Reg::scalar(6), 0);
  B.vindex(Reg::vector(1), ElemType::I32, Reg::scalar(6)); // 0..15
  B.movImm(Reg::scalar(4), 0); // loop counter
  B.movImm(Reg::scalar(5), 0); // byte offset, wraps inside the buffer
  auto Head = B.createLabel();
  auto Exit = B.createLabel();
  B.bind(Head);
  B.cmpImm(Reg::scalar(3), CmpKind::LT, Reg::scalar(4), 4096);
  B.brZero(Reg::scalar(3), Exit);
  if (Gathered) {
    B.vgather(Reg::vector(2), ElemType::I32, Reg::none(), Reg::scalar(5),
              Reg::vector(1), 4, static_cast<int64_t>(Base));
    B.vscatter(ElemType::I32, Reg::none(), Reg::scalar(5), Reg::vector(1), 4,
               static_cast<int64_t>(Base) + 8192, Reg::vector(2));
  } else {
    B.vload(Reg::vector(2), ElemType::I32, Reg::none(), Reg::scalar(1),
            Reg::scalar(5), 1, 0);
    B.vstore(ElemType::I32, Reg::none(), Reg::scalar(2), Reg::scalar(5), 1, 0,
             Reg::vector(2));
  }
  B.binOpImm(Opcode::AddImm, Reg::scalar(5), Reg::scalar(5), 64);
  B.binOpImm(Opcode::AndImm, Reg::scalar(5), Reg::scalar(5), 4095);
  B.binOpImm(Opcode::AddImm, Reg::scalar(4), Reg::scalar(4), 1);
  B.jmp(Head);
  B.bind(Exit);
  B.halt();
  return B.finalize();
}

void runVectorCode(benchmark::State &State, const isa::Program &P,
                   emu::SimdBackend Backend, bool MapMemory) {
  mem::Memory M;
  if (MapMemory)
    M.map(0x10000, 16384);
  emu::Machine Mach(M);
  emu::RunLimits Limits;
  Limits.Simd = Backend;
  uint64_t Instrs = 0, VecOps = 0;
  for (auto _ : State) {
    emu::ExecResult R = Mach.run(P, Limits);
    if (R.Reason != emu::StopReason::Halted)
      State.SkipWithError("vector-code program did not halt");
    Instrs += R.Stats.Instructions;
    VecOps += R.Stats.VectorOps;
    benchmark::DoNotOptimize(R.Stats.Instructions);
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
  State.counters["vecops/s"] = benchmark::Counter(
      static_cast<double>(VecOps), benchmark::Counter::kIsRate);
}

int registerSimdBenches() {
  using benchmark::RegisterBenchmark;
  static constexpr uint64_t Full32 = 0xffff, Half32 = 0x5555;
  static constexpr uint64_t Full64 = 0xff;
  for (const KernelBackend &KB : kernelBackends()) {
    const emu::simd::KernelTable &T = *KB.Table;
    std::string P = std::string("BM_LaneKernel/") + KB.Name + "/";
    auto AddBin = [&](const char *Op, emu::simd::VecBinFn Fn, uint64_t Mask,
                      const char *MaskName) {
      RegisterBenchmark((P + Op + "/" + MaskName).c_str(),
                        [Fn, Mask](benchmark::State &S) {
                          runBinKernel(S, Fn, Mask);
                        });
    };
    AddBin("VAdd.i32", T.IntBin[0][0], Full32, "full");
    AddBin("VAdd.i32", T.IntBin[0][0], Half32, "half");
    AddBin("VMul.i32", T.IntBin[2][0], Full32, "full");
    AddBin("VMin.i64", T.IntBin[6][1], Full64, "full");
    AddBin("VFAdd.f32", T.FpBin[0][0], Full32, "full");
    AddBin("VFAdd.f32", T.FpBin[0][0], Half32, "half");
    AddBin("VFDiv.f64", T.FpBin[3][1], Full64, "full");
    AddBin("VFMin.f32", T.FpBin[4][0], Full32, "full");
    RegisterBenchmark((P + "VCmpLT.i32/full").c_str(),
                      [Fn = T.CmpInt[2][0]](benchmark::State &S) {
                        runCmpKernel(S, Fn, Full32);
                      });
    RegisterBenchmark((P + "VCmpLT.f32/full").c_str(),
                      [Fn = T.CmpFp[2][0]](benchmark::State &S) {
                        runCmpKernel(S, Fn, Full32);
                      });
    RegisterBenchmark((P + "VConflictM.i32/full").c_str(),
                      [Fn = T.Conflict[0]](benchmark::State &S) {
                        runConflictKernel(S, Fn, Full32);
                      });
    RegisterBenchmark((P + "GatherAddr.i32").c_str(),
                      [Fn = T.GatherAddr[0]](benchmark::State &S) {
                        runGatherAddrKernel(S, Fn);
                      });

    // Emulator-level vector-code throughput with this backend pinned.
    static const isa::Program AluP = buildVectorAluProgram(false);
    static const isa::Program AluMaskedP = buildVectorAluProgram(true);
    static const isa::Program UnitP = buildVectorMemProgram(false);
    static const isa::Program GatherP = buildVectorMemProgram(true);
    std::string V = std::string("BM_VectorCode/") + KB.Name + "/";
    auto AddProg = [&](const char *Kind, const isa::Program &Prog,
                       bool MapMemory) {
      RegisterBenchmark((V + Kind).c_str(),
                        [&Prog, B = KB.Backend,
                         MapMemory](benchmark::State &S) {
                          runVectorCode(S, Prog, B, MapMemory);
                        })
          ->Unit(benchmark::kMicrosecond);
    };
    AddProg("alu", AluP, false);
    AddProg("alu.masked", AluMaskedP, false);
    AddProg("mem.unit_stride", UnitP, true);
    AddProg("mem.gather", GatherP, true);
  }
  return 0;
}

const int SimdBenchesRegistered = registerSimdBenches();

BENCHMARK(BM_EmulatorScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmulatorFlexVec)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmulatorPlusTimingModel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReferenceInterpreter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompilePipeline)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PdgAndAnalysis)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryClone)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryTlbHitLoad)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryTlbMissLoad)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryDeepClone)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryCloneThenTouchAll)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PredecodeAndSetup)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TraceDeliveryNoSink)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceDeliveryPerInstr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceDeliveryBatched)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
