//===- bench/bench_table1.cpp - Table 1: simulation parameters -------------===//
//
// Regenerates Table 1 of the paper: the simulated core configuration
// (echoed from the live defaults, with self-checks) and the FlexVec
// instruction latencies/throughputs, measured the way the paper measured
// VPCONFLICTM — "running a micro-kernel calling [the instruction] back to
// back" on the cycle model. Dependent chains expose latency; independent
// streams expose reciprocal throughput.
//
//===----------------------------------------------------------------------===//

#include "emu/Machine.h"
#include "sim/OooCore.h"
#include "support/Table.h"

#include <cstdio>

using namespace flexvec;
using namespace flexvec::isa;
using namespace flexvec::sim;

namespace {

SimStats timeProgram(const Program &P, mem::Memory &M) {
  OooCore Core;
  emu::Machine Mach(M);
  Mach.run(P, emu::RunLimits(), &Core);
  return Core.stats();
}

/// Per-op cycles of a dependent chain (latency) of \p Op on mask k3.
double maskChain(Opcode Op, bool Dependent, int N = 2000) {
  mem::Memory M;
  ProgramBuilder B;
  B.kset(Reg::mask(1), 0xFFFF);
  B.kset(Reg::mask(3), 0x0010);
  for (int I = 0; I < N; ++I) {
    Instruction Ins;
    Ins.Op = Op;
    Ins.Type = ElemType::I32;
    Ins.Dst = Dependent ? Reg::mask(3) : Reg::mask(4);
    Ins.Src1 = Reg::mask(3);
    Ins.MaskReg = Reg::mask(1);
    B.emit(Ins);
  }
  B.halt();
  return static_cast<double>(timeProgram(B.finalize(), M).Cycles) / N;
}

double slctLast(bool Dependent, int N = 2000) {
  mem::Memory M;
  ProgramBuilder B;
  B.kset(Reg::mask(1), 0x00FF);
  for (int I = 0; I < N; ++I)
    B.vslctlast(Dependent ? Reg::vector(1) : Reg::vector(2), ElemType::I32,
                Reg::mask(1), Reg::vector(1));
  B.halt();
  return static_cast<double>(timeProgram(B.finalize(), M).Cycles) / N;
}

double conflictM(bool Dependent, int N = 1000) {
  mem::Memory M;
  ProgramBuilder B;
  B.kset(Reg::mask(1), 0xFFFF);
  if (Dependent) {
    // Chain through the result mask: conflict -> kftm (2) -> next enable.
    for (int I = 0; I < N; ++I) {
      B.vconflictm(Reg::mask(2), ElemType::I32, Reg::mask(1), Reg::vector(1),
                   Reg::vector(2));
      B.kftmExc(Reg::mask(1), ElemType::I32, Reg::mask(2), Reg::mask(2));
    }
  } else {
    for (int I = 0; I < N; ++I)
      B.vconflictm(Reg::mask(2), ElemType::I32, Reg::mask(1), Reg::vector(1),
                   Reg::vector(2));
  }
  B.halt();
  double PerOp = static_cast<double>(timeProgram(B.finalize(), M).Cycles) / N;
  return Dependent ? PerOp - 2.0 /* subtract the KFTM link */ : PerOp;
}

/// First-faulting gather: lanes-per-cycle throughput over the two load
/// ports (paper: 1-cycle AGU latency, 2 loads per cycle).
double gatherFFLanesPerCycle(int N = 500) {
  mem::Memory M;
  M.map(0x1000, 1 << 16);
  ProgramBuilder B;
  B.movImm(Reg::scalar(1), 0x1000);
  B.movImm(Reg::scalar(2), 0);
  B.vindex(Reg::vector(1), ElemType::I32, Reg::scalar(2));
  for (int I = 0; I < N; ++I) {
    B.kset(Reg::mask(1), 0xFFFF);
    B.vgatherff(Reg::vector(2), ElemType::I32, Reg::mask(1), Reg::scalar(1),
                Reg::vector(1), 4, 0);
  }
  B.halt();
  SimStats S = timeProgram(B.finalize(), M);
  return 16.0 * N / static_cast<double>(S.Cycles);
}

} // namespace

int main() {
  std::printf("Table 1: Simulation Parameters\n\n");

  CoreConfig Cfg;
  TextTable Top({"component", "configuration"});
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "%u/%u/%u/%u wide", Cfg.FetchWidth,
                Cfg.DispatchWidth, Cfg.IssueWidth, Cfg.CommitWidth);
  Top.addRow({"Fetch/Dispatch/Issue/Commit", Buf});
  Top.addRow({"RS", std::to_string(Cfg.RsEntries) + " entries"});
  Top.addRow({"ROB", std::to_string(Cfg.RobEntries) + " entries"});
  Top.addRow({"Load/Store Queues", std::to_string(Cfg.LoadQueueEntries) +
                                       "/" +
                                       std::to_string(Cfg.StoreQueueEntries) +
                                       " entries"});
  Top.addRow({"L1 Dcache", "32K, 8 way, " +
                               std::to_string(Cfg.L1D.LatencyCycles) +
                               " cycles load to use latency"});
  Top.addRow({"L2 Unified Cache", "256K, 8 way, " +
                                      std::to_string(Cfg.L2.LatencyCycles) +
                                      " cycles hit time"});
  Top.addRow({"L3 Cache", "8M, 32 way, " +
                              std::to_string(Cfg.L3.LatencyCycles) +
                              " cycles hit time"});
  Top.addRow({"Memory Latency", std::to_string(Cfg.MemoryLatency) +
                                    " cycles"});
  Top.addRow({"Load/Store Ports", std::to_string(Cfg.LoadPorts) + "/" +
                                      std::to_string(Cfg.StorePorts) +
                                      " units"});
  Top.print();

  std::printf("\nFlexVec instruction latency/throughput "
              "(measured on the cycle model; paper values in brackets)\n\n");
  TextTable Bottom({"FlexVec instruction", "latency (cycles)",
                    "per-op cost, independent stream", "paper"});
  Bottom.addRow({"KFTMEXC", TextTable::fmt(maskChain(Opcode::KFtmExc, true), 1),
                 TextTable::fmt(maskChain(Opcode::KFtmExc, false), 2),
                 "2, 1"});
  Bottom.addRow({"KFTMINC", TextTable::fmt(maskChain(Opcode::KFtmInc, true), 1),
                 TextTable::fmt(maskChain(Opcode::KFtmInc, false), 2),
                 "2, 1"});
  Bottom.addRow({"VPSLCTLAST", TextTable::fmt(slctLast(true), 1),
                 TextTable::fmt(slctLast(false), 2), "3, 1"});
  Bottom.addRow({"VPCONFLICTM", TextTable::fmt(conflictM(true), 1),
                 TextTable::fmt(conflictM(false), 2), "20, 2"});
  char GBuf[64];
  std::snprintf(GBuf, sizeof(GBuf), "%.1f lanes/cycle",
                gatherFFLanesPerCycle());
  Bottom.addRow({"VPGATHERFF/VMOVFF", "1 cycle AGU + cache", GBuf,
                 "1 cycle AGU, 2 loads/cycle"});
  Bottom.print();
  return 0;
}
