//===- bench/bench_rtm_tile.cpp - RTM strip-mining tile sensitivity --------===//
//
// Reproduces the claim of Sections 3.3.2 and 4.1: when first-faulting
// loads are not available, FlexVec can run the vector code inside
// rollback-only transactions; with strip-mining, "the inner loop should
// have a tile size of 128 to 256 scalar iterations" to land "within 1% to
// 2% of the code that is vectorized using first faulting load/gather" —
// smaller tiles pay per-transaction overhead, larger tiles risk capacity
// aborts.
//
// The harness sweeps the tile size for the two speculative-load loops
// (the h264ref conditional-update loop and the gzip-style early-exit
// loop) and prints cycles relative to the first-faulting build.
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "core/Pipeline.h"
#include "support/Table.h"
#include "workloads/PaperLoops.h"

#include <cstdio>

using namespace flexvec;
using namespace flexvec::workloads;

int main() {
  std::printf("RTM strip-mining tile-size sensitivity "
              "(Sections 3.3.2 / 4.1)\n\n");

  struct Case {
    const char *Name;
    std::unique_ptr<ir::LoopFunction> F;
    LoopInputs In;
  };
  std::vector<Case> Cases;
  {
    Case C;
    C.Name = "h264 cond-update";
    C.F = buildH264Loop();
    Rng R(11);
    C.In = genH264Inputs(*C.F, R, /*N=*/60000, /*UpdateProb=*/0.03);
    Cases.push_back(std::move(C));
  }
  {
    Case C;
    C.Name = "string-search early-exit";
    C.F = buildEarlyExitLoop();
    Rng R(12);
    C.In = genEarlyExitInputs(*C.F, R, /*N=*/60000, /*MatchPos=*/55000);
    Cases.push_back(std::move(C));
  }

  const unsigned Tiles[] = {16, 32, 64, 128, 192, 256, 512, 1024};

  for (Case &C : Cases) {
    std::printf("== %s ==\n", C.Name);
    core::PipelineResult FFBuild = core::compileLoop(*C.F);
    core::Measurement FF =
        core::measureProgram(*FFBuild.FlexVec, C.In.Image, C.In.B);
    core::Measurement Scalar =
        core::measureProgram(FFBuild.Scalar, C.In.Image, C.In.B);

    TextTable T({"tile (scalar iters)", "cycles", "vs first-faulting",
                 "speedup vs scalar"});
    T.addRow({"first-faulting build",
              TextTable::fmtInt(static_cast<long long>(FF.Timing.Cycles)),
              "100.0%", TextTable::fmt(core::speedup(Scalar, FF), 2) + "x"});
    T.addSeparator();
    for (unsigned Tile : Tiles) {
      core::PipelineResult PR = core::compileLoop(*C.F, Tile);
      core::Measurement M =
          core::measureProgram(*PR.Rtm, C.In.Image, C.In.B);
      // Cross-check correctness while we are here.
      if (M.Outcome.MemFingerprint != FF.Outcome.MemFingerprint) {
        std::printf("tile %u: OUTPUT MISMATCH\n", Tile);
        return 1;
      }
      double Rel = static_cast<double>(M.Timing.Cycles) /
                   static_cast<double>(FF.Timing.Cycles);
      T.addRow({std::to_string(Tile),
                TextTable::fmtInt(static_cast<long long>(M.Timing.Cycles)),
                TextTable::fmtPercent(Rel),
                TextTable::fmt(core::speedup(Scalar, M), 2) + "x"});
    }
    T.print();
    std::printf("\n");
  }
  std::printf("paper reference: tiles of 128-256 land within 1-2%% of the "
              "first-faulting build; small tiles pay XBEGIN/XEND overhead.\n");
  return 0;
}
