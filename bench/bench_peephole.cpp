//===- bench/bench_peephole.cpp - Downstream-pass ablation ------------------===//
//
// Section 3.7 argues the FlexVec intrinsic representation keeps the
// generated partial vector code amenable to "the down-stream passes of
// the compiler", and Section 4.2 applies redundant code elimination to
// the VPL (Figure 6(f)). This ablation measures what those passes are
// worth on the generated code: for each benchmark kernel class, cycles of
// the raw FlexVec program vs the peephole-optimized one (loop-invariant
// code motion + local CSE + dead code elimination), plus the static
// instruction counts.
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "core/Pipeline.h"
#include "support/Table.h"
#include "workloads/Benchmarks.h"

#include <cstdio>

using namespace flexvec;
using namespace flexvec::workloads;

int main() {
  std::printf("Downstream-pass ablation: raw vs optimized partial vector "
              "code (Sections 3.7 / 4.2)\n\n");

  struct Case {
    const char *Name;
    std::unique_ptr<ir::LoopFunction> F;
    BenchInstance In;
  };
  std::vector<Case> Cases;
  {
    Case C{"cond-update (h264ref)", buildH264Loop(), {}};
    Rng R(41);
    C.In = genCondGatherInputs(*C.F, R, 20000, 2, 0.02);
    Cases.push_back(std::move(C));
  }
  {
    Case C{"conflict (scatter f32)",
           buildScatterAccumLoop("ablate_scatter", true, 2), {}};
    Rng R(42);
    C.In = genScatterAccumInputs(*C.F, R, 20000, 2, 0.02, 4096, true, 2);
    Cases.push_back(std::move(C));
  }
  {
    Case C{"argmin (int, extra=2)",
           buildArgExtremeLoop("ablate_argmin", false, 2, false), {}};
    Rng R(43);
    C.In = genArgExtremeInputs(*C.F, R, 20000, 2, 0.02, false, 2, false);
    Cases.push_back(std::move(C));
  }

  TextTable T({"kernel", "static instrs (raw)", "static instrs (opt)",
               "passes", "cycles (raw)", "cycles (opt)", "gain",
               "correct"});
  for (Case &C : Cases) {
    core::PipelineResult PR = core::compileLoop(*C.F);
    sim::OooCore RawCore, OptCore;
    core::RunOutcome RawOut = core::runProgramMulti(
        *C.F, *PR.FlexVec, C.In.Image, C.In.Invocations, &RawCore);
    core::RunOutcome OptOut = core::runProgramMulti(
        *C.F, *PR.FlexVecOpt, C.In.Image, C.In.Invocations, &OptCore);
    bool Correct = core::outcomesMatch(*C.F, RawOut, OptOut);
    double Gain = static_cast<double>(RawCore.stats().Cycles) /
                  static_cast<double>(OptCore.stats().Cycles);
    T.addRow({C.Name, std::to_string(PR.FlexVec->Prog.size()),
              std::to_string(PR.FlexVecOpt->Prog.size()),
              PR.OptStats.describe(),
              TextTable::fmtInt(static_cast<long long>(RawCore.stats().Cycles)),
              TextTable::fmtInt(static_cast<long long>(OptCore.stats().Cycles)),
              TextTable::fmt(Gain, 3) + "x", Correct ? "yes" : "NO"});
  }
  T.print();
  std::printf("\nThe headline Figure 8 numbers use the *raw* FlexVec code; "
              "these passes are the additional headroom a production\n"
              "compiler's downstream pipeline would claim, enabled by the "
              "concise intrinsic representation (Section 3.7).\n");
  return 0;
}
