# Empty dependencies file for flexvec-cli.
# This may be replaced when dependencies are built.
