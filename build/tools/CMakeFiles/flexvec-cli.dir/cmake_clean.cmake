file(REMOVE_RECURSE
  "CMakeFiles/flexvec-cli.dir/flexvec-cli.cpp.o"
  "CMakeFiles/flexvec-cli.dir/flexvec-cli.cpp.o.d"
  "flexvec-cli"
  "flexvec-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvec-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
