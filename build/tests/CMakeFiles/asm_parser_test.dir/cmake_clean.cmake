file(REMOVE_RECURSE
  "CMakeFiles/asm_parser_test.dir/AsmParserTest.cpp.o"
  "CMakeFiles/asm_parser_test.dir/AsmParserTest.cpp.o.d"
  "asm_parser_test"
  "asm_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
