# Empty dependencies file for asm_parser_test.
# This may be replaced when dependencies are built.
