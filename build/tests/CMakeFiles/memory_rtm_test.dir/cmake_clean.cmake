file(REMOVE_RECURSE
  "CMakeFiles/memory_rtm_test.dir/MemoryRtmTest.cpp.o"
  "CMakeFiles/memory_rtm_test.dir/MemoryRtmTest.cpp.o.d"
  "memory_rtm_test"
  "memory_rtm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_rtm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
