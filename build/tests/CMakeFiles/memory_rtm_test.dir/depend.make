# Empty dependencies file for memory_rtm_test.
# This may be replaced when dependencies are built.
