file(REMOVE_RECURSE
  "CMakeFiles/pdg_analysis_test.dir/PdgAnalysisTest.cpp.o"
  "CMakeFiles/pdg_analysis_test.dir/PdgAnalysisTest.cpp.o.d"
  "pdg_analysis_test"
  "pdg_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdg_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
