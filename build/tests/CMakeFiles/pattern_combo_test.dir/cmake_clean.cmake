file(REMOVE_RECURSE
  "CMakeFiles/pattern_combo_test.dir/PatternComboTest.cpp.o"
  "CMakeFiles/pattern_combo_test.dir/PatternComboTest.cpp.o.d"
  "pattern_combo_test"
  "pattern_combo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_combo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
