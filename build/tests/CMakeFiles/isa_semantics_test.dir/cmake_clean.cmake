file(REMOVE_RECURSE
  "CMakeFiles/isa_semantics_test.dir/IsaSemanticsTest.cpp.o"
  "CMakeFiles/isa_semantics_test.dir/IsaSemanticsTest.cpp.o.d"
  "isa_semantics_test"
  "isa_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
