file(REMOVE_RECURSE
  "CMakeFiles/ir_interp_test.dir/IrInterpTest.cpp.o"
  "CMakeFiles/ir_interp_test.dir/IrInterpTest.cpp.o.d"
  "ir_interp_test"
  "ir_interp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
