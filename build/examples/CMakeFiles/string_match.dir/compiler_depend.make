# Empty compiler generated dependencies file for string_match.
# This may be replaced when dependencies are built.
