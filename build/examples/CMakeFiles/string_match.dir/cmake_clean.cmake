file(REMOVE_RECURSE
  "CMakeFiles/string_match.dir/string_match.cpp.o"
  "CMakeFiles/string_match.dir/string_match.cpp.o.d"
  "string_match"
  "string_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
