# Empty dependencies file for conflict_detection.
# This may be replaced when dependencies are built.
