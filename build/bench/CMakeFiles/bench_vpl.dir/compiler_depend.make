# Empty compiler generated dependencies file for bench_vpl.
# This may be replaced when dependencies are built.
