file(REMOVE_RECURSE
  "CMakeFiles/bench_vpl.dir/bench_vpl.cpp.o"
  "CMakeFiles/bench_vpl.dir/bench_vpl.cpp.o.d"
  "bench_vpl"
  "bench_vpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
