# Empty dependencies file for bench_effective_vl.
# This may be replaced when dependencies are built.
