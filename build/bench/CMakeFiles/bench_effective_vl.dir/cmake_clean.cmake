file(REMOVE_RECURSE
  "CMakeFiles/bench_effective_vl.dir/bench_effective_vl.cpp.o"
  "CMakeFiles/bench_effective_vl.dir/bench_effective_vl.cpp.o.d"
  "bench_effective_vl"
  "bench_effective_vl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_effective_vl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
