file(REMOVE_RECURSE
  "CMakeFiles/bench_peephole.dir/bench_peephole.cpp.o"
  "CMakeFiles/bench_peephole.dir/bench_peephole.cpp.o.d"
  "bench_peephole"
  "bench_peephole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_peephole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
