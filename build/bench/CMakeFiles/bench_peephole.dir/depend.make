# Empty dependencies file for bench_peephole.
# This may be replaced when dependencies are built.
