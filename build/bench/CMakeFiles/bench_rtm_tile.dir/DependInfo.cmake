
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_rtm_tile.cpp" "bench/CMakeFiles/bench_rtm_tile.dir/bench_rtm_tile.cpp.o" "gcc" "bench/CMakeFiles/bench_rtm_tile.dir/bench_rtm_tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/fv_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/fv_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/fv_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fv_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pdg/CMakeFiles/fv_pdg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/fv_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/rtm/CMakeFiles/fv_rtm.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/fv_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fv_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
