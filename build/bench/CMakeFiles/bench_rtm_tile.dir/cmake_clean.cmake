file(REMOVE_RECURSE
  "CMakeFiles/bench_rtm_tile.dir/bench_rtm_tile.cpp.o"
  "CMakeFiles/bench_rtm_tile.dir/bench_rtm_tile.cpp.o.d"
  "bench_rtm_tile"
  "bench_rtm_tile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtm_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
