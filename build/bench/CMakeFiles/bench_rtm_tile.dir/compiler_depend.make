# Empty compiler generated dependencies file for bench_rtm_tile.
# This may be replaced when dependencies are built.
