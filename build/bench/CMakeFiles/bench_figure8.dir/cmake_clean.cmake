file(REMOVE_RECURSE
  "CMakeFiles/bench_figure8.dir/bench_figure8.cpp.o"
  "CMakeFiles/bench_figure8.dir/bench_figure8.cpp.o.d"
  "bench_figure8"
  "bench_figure8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
