file(REMOVE_RECURSE
  "CMakeFiles/fv_core.dir/Evaluator.cpp.o"
  "CMakeFiles/fv_core.dir/Evaluator.cpp.o.d"
  "CMakeFiles/fv_core.dir/Measure.cpp.o"
  "CMakeFiles/fv_core.dir/Measure.cpp.o.d"
  "CMakeFiles/fv_core.dir/Pipeline.cpp.o"
  "CMakeFiles/fv_core.dir/Pipeline.cpp.o.d"
  "libfv_core.a"
  "libfv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
