file(REMOVE_RECURSE
  "CMakeFiles/fv_support.dir/Statistics.cpp.o"
  "CMakeFiles/fv_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/fv_support.dir/Table.cpp.o"
  "CMakeFiles/fv_support.dir/Table.cpp.o.d"
  "libfv_support.a"
  "libfv_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
