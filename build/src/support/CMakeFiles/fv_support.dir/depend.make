# Empty dependencies file for fv_support.
# This may be replaced when dependencies are built.
