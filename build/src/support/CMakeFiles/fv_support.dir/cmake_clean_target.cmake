file(REMOVE_RECURSE
  "libfv_support.a"
)
