file(REMOVE_RECURSE
  "libfv_emu.a"
)
