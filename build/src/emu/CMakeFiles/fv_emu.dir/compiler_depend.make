# Empty compiler generated dependencies file for fv_emu.
# This may be replaced when dependencies are built.
