file(REMOVE_RECURSE
  "CMakeFiles/fv_emu.dir/Machine.cpp.o"
  "CMakeFiles/fv_emu.dir/Machine.cpp.o.d"
  "libfv_emu.a"
  "libfv_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
