file(REMOVE_RECURSE
  "libfv_analysis.a"
)
