# Empty dependencies file for fv_analysis.
# This may be replaced when dependencies are built.
