file(REMOVE_RECURSE
  "CMakeFiles/fv_analysis.dir/CostModel.cpp.o"
  "CMakeFiles/fv_analysis.dir/CostModel.cpp.o.d"
  "CMakeFiles/fv_analysis.dir/Patterns.cpp.o"
  "CMakeFiles/fv_analysis.dir/Patterns.cpp.o.d"
  "libfv_analysis.a"
  "libfv_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
