file(REMOVE_RECURSE
  "libfv_ir.a"
)
