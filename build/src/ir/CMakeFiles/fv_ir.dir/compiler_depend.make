# Empty compiler generated dependencies file for fv_ir.
# This may be replaced when dependencies are built.
