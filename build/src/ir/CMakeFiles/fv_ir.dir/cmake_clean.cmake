file(REMOVE_RECURSE
  "CMakeFiles/fv_ir.dir/IR.cpp.o"
  "CMakeFiles/fv_ir.dir/IR.cpp.o.d"
  "CMakeFiles/fv_ir.dir/Interp.cpp.o"
  "CMakeFiles/fv_ir.dir/Interp.cpp.o.d"
  "CMakeFiles/fv_ir.dir/Parser.cpp.o"
  "CMakeFiles/fv_ir.dir/Parser.cpp.o.d"
  "libfv_ir.a"
  "libfv_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
