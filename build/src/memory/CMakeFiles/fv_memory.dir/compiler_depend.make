# Empty compiler generated dependencies file for fv_memory.
# This may be replaced when dependencies are built.
