file(REMOVE_RECURSE
  "libfv_memory.a"
)
