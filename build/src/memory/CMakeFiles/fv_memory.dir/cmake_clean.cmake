file(REMOVE_RECURSE
  "CMakeFiles/fv_memory.dir/Memory.cpp.o"
  "CMakeFiles/fv_memory.dir/Memory.cpp.o.d"
  "libfv_memory.a"
  "libfv_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
