file(REMOVE_RECURSE
  "CMakeFiles/fv_workloads.dir/Benchmarks.cpp.o"
  "CMakeFiles/fv_workloads.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/fv_workloads.dir/PaperLoops.cpp.o"
  "CMakeFiles/fv_workloads.dir/PaperLoops.cpp.o.d"
  "libfv_workloads.a"
  "libfv_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
