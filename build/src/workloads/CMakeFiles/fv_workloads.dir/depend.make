# Empty dependencies file for fv_workloads.
# This may be replaced when dependencies are built.
