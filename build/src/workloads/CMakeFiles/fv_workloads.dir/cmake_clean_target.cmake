file(REMOVE_RECURSE
  "libfv_workloads.a"
)
