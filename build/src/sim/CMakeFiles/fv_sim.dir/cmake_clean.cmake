file(REMOVE_RECURSE
  "CMakeFiles/fv_sim.dir/Cache.cpp.o"
  "CMakeFiles/fv_sim.dir/Cache.cpp.o.d"
  "CMakeFiles/fv_sim.dir/OooCore.cpp.o"
  "CMakeFiles/fv_sim.dir/OooCore.cpp.o.d"
  "libfv_sim.a"
  "libfv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
