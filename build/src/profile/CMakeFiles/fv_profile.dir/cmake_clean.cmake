file(REMOVE_RECURSE
  "CMakeFiles/fv_profile.dir/LoopProfiler.cpp.o"
  "CMakeFiles/fv_profile.dir/LoopProfiler.cpp.o.d"
  "libfv_profile.a"
  "libfv_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
