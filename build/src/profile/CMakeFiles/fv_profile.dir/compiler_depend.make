# Empty compiler generated dependencies file for fv_profile.
# This may be replaced when dependencies are built.
