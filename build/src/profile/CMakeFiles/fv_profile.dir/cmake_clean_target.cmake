file(REMOVE_RECURSE
  "libfv_profile.a"
)
