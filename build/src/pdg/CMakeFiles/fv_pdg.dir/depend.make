# Empty dependencies file for fv_pdg.
# This may be replaced when dependencies are built.
