file(REMOVE_RECURSE
  "libfv_pdg.a"
)
