
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdg/Pdg.cpp" "src/pdg/CMakeFiles/fv_pdg.dir/Pdg.cpp.o" "gcc" "src/pdg/CMakeFiles/fv_pdg.dir/Pdg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/fv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fv_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fv_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/fv_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
