file(REMOVE_RECURSE
  "CMakeFiles/fv_pdg.dir/Pdg.cpp.o"
  "CMakeFiles/fv_pdg.dir/Pdg.cpp.o.d"
  "libfv_pdg.a"
  "libfv_pdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_pdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
