file(REMOVE_RECURSE
  "libfv_codegen.a"
)
