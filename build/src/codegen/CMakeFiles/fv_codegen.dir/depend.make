# Empty dependencies file for fv_codegen.
# This may be replaced when dependencies are built.
