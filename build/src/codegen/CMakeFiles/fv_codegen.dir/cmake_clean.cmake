file(REMOVE_RECURSE
  "CMakeFiles/fv_codegen.dir/Generators.cpp.o"
  "CMakeFiles/fv_codegen.dir/Generators.cpp.o.d"
  "CMakeFiles/fv_codegen.dir/Peephole.cpp.o"
  "CMakeFiles/fv_codegen.dir/Peephole.cpp.o.d"
  "CMakeFiles/fv_codegen.dir/ScalarCodeGen.cpp.o"
  "CMakeFiles/fv_codegen.dir/ScalarCodeGen.cpp.o.d"
  "CMakeFiles/fv_codegen.dir/VectorEmitter.cpp.o"
  "CMakeFiles/fv_codegen.dir/VectorEmitter.cpp.o.d"
  "libfv_codegen.a"
  "libfv_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
