file(REMOVE_RECURSE
  "libfv_isa.a"
)
