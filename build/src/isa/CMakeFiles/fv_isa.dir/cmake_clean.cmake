file(REMOVE_RECURSE
  "CMakeFiles/fv_isa.dir/AsmParser.cpp.o"
  "CMakeFiles/fv_isa.dir/AsmParser.cpp.o.d"
  "CMakeFiles/fv_isa.dir/InstrInfo.cpp.o"
  "CMakeFiles/fv_isa.dir/InstrInfo.cpp.o.d"
  "CMakeFiles/fv_isa.dir/Instruction.cpp.o"
  "CMakeFiles/fv_isa.dir/Instruction.cpp.o.d"
  "CMakeFiles/fv_isa.dir/Opcode.cpp.o"
  "CMakeFiles/fv_isa.dir/Opcode.cpp.o.d"
  "CMakeFiles/fv_isa.dir/Program.cpp.o"
  "CMakeFiles/fv_isa.dir/Program.cpp.o.d"
  "libfv_isa.a"
  "libfv_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
