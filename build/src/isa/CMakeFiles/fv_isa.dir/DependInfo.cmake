
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/AsmParser.cpp" "src/isa/CMakeFiles/fv_isa.dir/AsmParser.cpp.o" "gcc" "src/isa/CMakeFiles/fv_isa.dir/AsmParser.cpp.o.d"
  "/root/repo/src/isa/InstrInfo.cpp" "src/isa/CMakeFiles/fv_isa.dir/InstrInfo.cpp.o" "gcc" "src/isa/CMakeFiles/fv_isa.dir/InstrInfo.cpp.o.d"
  "/root/repo/src/isa/Instruction.cpp" "src/isa/CMakeFiles/fv_isa.dir/Instruction.cpp.o" "gcc" "src/isa/CMakeFiles/fv_isa.dir/Instruction.cpp.o.d"
  "/root/repo/src/isa/Opcode.cpp" "src/isa/CMakeFiles/fv_isa.dir/Opcode.cpp.o" "gcc" "src/isa/CMakeFiles/fv_isa.dir/Opcode.cpp.o.d"
  "/root/repo/src/isa/Program.cpp" "src/isa/CMakeFiles/fv_isa.dir/Program.cpp.o" "gcc" "src/isa/CMakeFiles/fv_isa.dir/Program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
