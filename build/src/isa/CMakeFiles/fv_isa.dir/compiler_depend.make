# Empty compiler generated dependencies file for fv_isa.
# This may be replaced when dependencies are built.
