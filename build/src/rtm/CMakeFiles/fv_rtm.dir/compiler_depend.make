# Empty compiler generated dependencies file for fv_rtm.
# This may be replaced when dependencies are built.
