file(REMOVE_RECURSE
  "CMakeFiles/fv_rtm.dir/Transaction.cpp.o"
  "CMakeFiles/fv_rtm.dir/Transaction.cpp.o.d"
  "libfv_rtm.a"
  "libfv_rtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
