file(REMOVE_RECURSE
  "libfv_rtm.a"
)
